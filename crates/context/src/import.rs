//! Importing real PoP locations (§3.1: "It would certainly be possible to
//! choose PoPs according to real-life city locations … or use real PoP
//! locations if required").
//!
//! The format is a minimal CSV, one PoP per line:
//!
//! ```text
//! # name, x, y, population
//! Adelaide, 138.6, -34.9, 1.3
//! Melbourne, 145.0, -37.8, 5.0
//! Sydney, 151.2, -33.9, 5.3
//! ```
//!
//! Comments (`#`) and blank lines are ignored. The population column is
//! optional; missing populations are drawn from the supplied model so a
//! bare coordinate list still yields a full context.

use crate::gravity::GravityModel;
use crate::population::{PopulationKind, PopulationModel};
use crate::region::Point;
use crate::rng::rng_for;
use crate::Context;

/// One imported PoP record.
#[derive(Debug, Clone, PartialEq)]
pub struct PopRecord {
    /// Site name (free text, no commas).
    pub name: String,
    /// Coordinate (any planar unit — degrees, km, …; COLD's costs scale
    /// with whatever unit is used).
    pub x: f64,
    /// Coordinate.
    pub y: f64,
    /// Population / demand weight, if given.
    pub population: Option<f64>,
}

/// Import errors with line positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

/// Parses the CSV text into records.
///
/// # Errors
/// Returns the first malformed line (wrong field count, unparsable
/// numbers, non-positive population).
pub fn parse_pop_csv(text: &str) -> Result<Vec<PopRecord>, ImportError> {
    let mut records = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if !(3..=4).contains(&fields.len()) {
            return Err(ImportError {
                line: line_no,
                message: format!(
                    "expected `name, x, y[, population]`, got {} fields",
                    fields.len()
                ),
            });
        }
        if fields[0].is_empty() {
            return Err(ImportError { line: line_no, message: "empty name".into() });
        }
        let num = |s: &str, what: &str| -> Result<f64, ImportError> {
            s.parse::<f64>().map_err(|_| ImportError {
                line: line_no,
                message: format!("cannot parse {what} `{s}`"),
            })
        };
        let x = num(fields[1], "x")?;
        let y = num(fields[2], "y")?;
        let population = if fields.len() == 4 {
            let p = num(fields[3], "population")?;
            if p <= 0.0 || !p.is_finite() {
                return Err(ImportError {
                    line: line_no,
                    message: format!("population must be positive, got {p}"),
                });
            }
            Some(p)
        } else {
            None
        };
        records.push(PopRecord { name: fields[0].to_string(), x, y, population });
    }
    Ok(records)
}

/// Builds a full synthesis [`Context`] from imported records.
///
/// Records without a population get one drawn from `fallback_population`
/// (seeded, reproducible). Returns the context and the site names aligned
/// with PoP indices.
///
/// # Errors
/// Propagates parse errors; additionally rejects inputs with fewer than 2
/// PoPs.
pub fn context_from_csv(
    text: &str,
    fallback_population: PopulationKind,
    gravity: GravityModel,
    seed: u64,
) -> Result<(Context, Vec<String>), ImportError> {
    let records = parse_pop_csv(text)?;
    if records.len() < 2 {
        return Err(ImportError {
            line: 0,
            message: format!("need at least 2 PoPs, got {}", records.len()),
        });
    }
    let positions: Vec<Point> = records.iter().map(|r| Point::new(r.x, r.y)).collect();
    let mut rng = rng_for(seed, 0x1A90);
    let fallback = fallback_population.sample(records.len(), &mut rng);
    let populations: Vec<f64> =
        records.iter().zip(&fallback).map(|(r, &f)| r.population.unwrap_or(f)).collect();
    let traffic = gravity.traffic_matrix(&populations, Some(&positions));
    let names = records.into_iter().map(|r| r.name).collect();
    Ok((Context::new(positions, populations, traffic), names))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Australian backbone sample
Adelaide, 138.6, -34.9, 1.3
Melbourne, 145.0, -37.8, 5.0

Sydney, 151.2, -33.9, 5.3
Perth, 115.9, -31.9
";

    #[test]
    fn parses_names_coordinates_and_optional_population() {
        let recs = parse_pop_csv(SAMPLE).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].name, "Adelaide");
        assert_eq!(recs[0].population, Some(1.3));
        assert_eq!(recs[3].name, "Perth");
        assert_eq!(recs[3].population, None);
        assert!((recs[2].x - 151.2).abs() < 1e-12);
    }

    #[test]
    fn error_reports_line_numbers() {
        let bad = "A, 1.0, 2.0\nB, x, 2.0\n";
        let e = parse_pop_csv(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("cannot parse x"));
        let too_few = "A, 1.0\n";
        assert_eq!(parse_pop_csv(too_few).unwrap_err().line, 1);
        let neg = "A, 1, 2, -3\n";
        assert!(parse_pop_csv(neg).unwrap_err().message.contains("positive"));
    }

    #[test]
    fn context_uses_given_populations_and_fills_missing() {
        let (ctx, names) = context_from_csv(
            SAMPLE,
            PopulationKind::Constant { value: 9.0 },
            GravityModel::raw(),
            1,
        )
        .unwrap();
        assert_eq!(names, vec!["Adelaide", "Melbourne", "Sydney", "Perth"]);
        assert_eq!(ctx.populations[..3], [1.3, 5.0, 5.3]);
        assert_eq!(ctx.populations[3], 9.0, "fallback model fills the gap");
        // Gravity: Melbourne–Sydney demand = 5.0 · 5.3.
        assert!((ctx.traffic.demand(1, 2) - 26.5).abs() < 1e-9);
    }

    #[test]
    fn too_few_pops_rejected() {
        let e = context_from_csv("A, 1, 2, 3\n", PopulationKind::default(), GravityModel::raw(), 0)
            .unwrap_err();
        assert!(e.message.contains("at least 2"));
    }

    #[test]
    fn imported_context_distances_match_coordinates() {
        let (ctx, _) = context_from_csv(
            SAMPLE,
            PopulationKind::Constant { value: 2.0 },
            GravityModel::raw(),
            2,
        )
        .unwrap();
        for u in 0..ctx.n() {
            for v in 0..ctx.n() {
                let direct = ctx.positions[u].distance(&ctx.positions[v]);
                assert!((ctx.distance(u, v) - direct).abs() < 1e-12);
            }
        }
    }
}
