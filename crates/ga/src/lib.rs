//! The COLD Genetic Algorithm (§4–§5 of the paper).
//!
//! COLD's optimization problem — minimize eq. (2) over connected graphs —
//! has no useful decomposition or relaxation, so the paper solves it with a
//! heuristic Genetic Algorithm chosen for being *flexible* (small changes
//! accommodate new objectives), *competitive* (seeding the initial
//! population with other algorithms' outputs guarantees the result is at
//! least as good as theirs) and *non-exclusive* (one run yields a whole
//! population of good topologies) (§3.3).
//!
//! This crate implements the GA exactly as §4 describes:
//!
//! - chromosomes are adjacency matrices ([`chromosome`]);
//! - the first generation contains the MST, the clique, optional seed
//!   topologies, and Erdős–Rényi fill ([`init`]);
//! - crossover picks `b = 10` random candidates, keeps the best `a = 2`,
//!   and copies each potential link from a parent chosen with probability
//!   inversely proportional to cost ([`crossover`]);
//! - mutation is either a geometric(½) link add/remove or a node
//!   "leaf-ification" ([`mutation`]);
//! - disconnected offspring are repaired with an inter-component MST
//!   ([`repair`], §4.1.3);
//! - the generational loop with elitism and (optional, crossbeam-based)
//!   parallel fitness evaluation lives in [`engine`].
//!
//! The engine is generic over an [`Objective`] so alternative cost models
//! (multi-AS interconnect costs, router-level objectives, …) plug in
//! without touching the GA — the extensibility §2 highlights.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod chromosome;
pub mod crossover;
pub mod engine;
pub mod error;
pub mod init;
pub mod mutation;
pub mod repair;
pub mod settings;

pub use checkpoint::GaCheckpoint;
pub use chromosome::Individual;
pub use engine::{CheckpointHook, EvalStats, GaResult, GeneticAlgorithm, StopReason};
pub use error::GaError;
pub use settings::{EarlyStop, GaSettings};

// Telemetry hook types, re-exported so engine callers can attach
// observers without depending on `cold-obs` directly.
pub use cold_obs::{GenerationObserver, GenerationRecord};

use cold_graph::AdjacencyMatrix;

/// The fitness interface the GA minimizes.
///
/// Implementations must be [`Sync`]: the engine evaluates populations in
/// parallel. Costs must be finite, non-negative and deterministic — the
/// engine caches them per individual.
pub trait Objective: Sync {
    /// Number of nodes of every candidate topology.
    fn n(&self) -> usize;

    /// Physical distance between two nodes (drives connectivity repair and
    /// node mutation's "closest non-leaf" reattachment).
    fn distance(&self, u: usize, v: usize) -> f64;

    /// Cost of a **connected** topology. The engine repairs candidates
    /// before calling this, so implementations may treat disconnection as
    /// a programming error.
    fn cost(&self, topology: &AdjacencyMatrix) -> f64;
}

/// Blanket implementation for references, so `&O` can be passed where an
/// objective is expected.
impl<O: Objective + ?Sized> Objective for &O {
    fn n(&self) -> usize {
        (**self).n()
    }
    fn distance(&self, u: usize, v: usize) -> f64 {
        (**self).distance(u, v)
    }
    fn cost(&self, topology: &AdjacencyMatrix) -> f64 {
        (**self).cost(topology)
    }
}

#[cfg(test)]
pub(crate) mod test_objective {
    use super::Objective;
    use cold_graph::AdjacencyMatrix;

    /// A cheap deterministic objective for engine tests: nodes on a line,
    /// cost = k0·|E| + k1·Σℓ + k3·hubs. No routing, so tests are fast and
    /// the optimum is analytically known for extreme parameters.
    pub struct LineObjective {
        pub n: usize,
        pub k0: f64,
        pub k1: f64,
        pub k3: f64,
    }

    impl Objective for LineObjective {
        fn n(&self) -> usize {
            self.n
        }
        fn distance(&self, u: usize, v: usize) -> f64 {
            (u as f64 - v as f64).abs()
        }
        fn cost(&self, topo: &AdjacencyMatrix) -> f64 {
            let mut c = 0.0;
            for (u, v) in topo.edges() {
                c += self.k0 + self.k1 * self.distance(u, v);
            }
            c += self.k3 * topo.degrees().iter().filter(|&&d| d > 1).count() as f64;
            c
        }
    }
}
