//! Integration tests pinning the paper's *claims* (as opposed to code
//! invariants): the §3.2.3 cost-limit taxonomy against brute force, the
//! §5 optimality statement, §6 tunability directions, and §7's hub-cost
//! necessity argument.

use cold::{ColdConfig, SynthesisMode};
use cold_context::ContextConfig;
use cold_cost::{CostEvaluator, CostParams};
use cold_graph::metrics::{cvnd, global_clustering};
use cold_graph::mst::mst_matrix;
use cold_heuristics::brute_force_optimum;

/// §3.2.3: "if [k1] dominates, then the optimum solution is a minimum
/// spanning tree" — verified against exhaustive enumeration.
#[test]
fn k1_dominant_brute_force_optimum_is_the_mst() {
    for seed in 0..3u64 {
        let ctx = ContextConfig::paper_default(6).generate(seed);
        let eval = CostEvaluator::new(&ctx, CostParams::new(0.0, 1.0, 0.0, 0.0));
        let opt = brute_force_optimum(&eval);
        let mst = mst_matrix(6, ctx.distance_fn());
        assert!(
            (opt.cost - eval.cost(&mst).unwrap()).abs() < 1e-9,
            "seed {seed}: optimum {} vs MST {}",
            opt.cost,
            eval.cost(&mst).unwrap()
        );
    }
}

/// §3.2.3: "when k2 dominates … the result will be a clique".
#[test]
fn k2_dominant_brute_force_optimum_is_the_clique() {
    let ctx = ContextConfig::paper_default(5).generate(1);
    let eval = CostEvaluator::new(&ctx, CostParams::new(1e-9, 1e-9, 1.0, 0.0));
    let opt = brute_force_optimum(&eval);
    assert_eq!(opt.topology.edge_count(), 10);
}

/// §3.2.3: "If [k3] is dominant, the optimal network will have only one
/// node with degree greater than one".
#[test]
fn k3_dominant_brute_force_optimum_is_hub_and_spoke() {
    let ctx = ContextConfig::paper_default(6).generate(2);
    let eval = CostEvaluator::new(&ctx, CostParams::new(0.001, 0.001, 0.0, 1e9));
    let opt = brute_force_optimum(&eval);
    let hubs = opt.topology.degrees().iter().filter(|&&d| d > 1).count();
    assert_eq!(hubs, 1);
}

/// §5: "the GA always finds the real optimal solution" for small networks
/// (initialized variant; see DESIGN.md §5 for the n ≤ 7 bound).
#[test]
fn initialized_ga_matches_brute_force_on_small_instances() {
    let mut exact = 0;
    let mut total = 0;
    for seed in 0..2u64 {
        for (k2, k3) in [(1e-4, 0.0), (1e-3, 50.0)] {
            let cfg = ColdConfig::quick(6, k2, k3);
            let ctx = cfg.context.generate(seed);
            let eval = CostEvaluator::new(&ctx, cfg.params);
            let bf = brute_force_optimum(&eval);
            let ga = cfg.synthesize_in_context(ctx.clone(), seed);
            total += 1;
            if (ga.best_cost() - bf.cost).abs() < 1e-9 {
                exact += 1;
            }
        }
    }
    assert_eq!(exact, total, "GA missed the optimum on {}/{total} instances", total - exact);
}

/// §6 (Fig 5): average degree increases with k2.
#[test]
fn average_degree_monotone_in_k2_on_shared_contexts() {
    let n = 10;
    let (mut lo_sum, mut hi_sum) = (0.0, 0.0);
    for seed in 0..3u64 {
        let lo_cfg = ColdConfig::quick(n, 1e-5, 0.0);
        let hi_cfg = ColdConfig::quick(n, 5e-2, 0.0);
        let ctx = lo_cfg.context.generate(seed);
        lo_sum += lo_cfg.synthesize_in_context(ctx.clone(), seed).stats.average_degree;
        hi_sum += hi_cfg.synthesize_in_context(ctx, seed).stats.average_degree;
    }
    assert!(
        hi_sum > lo_sum + 0.5,
        "degree must rise with k2: low {lo_sum} vs high {hi_sum} (summed)"
    );
}

/// §6 (Fig 7): clustering moves from tree-like 0 toward 1 as k2 grows.
#[test]
fn clustering_responds_to_k2() {
    let n = 9;
    let lo_cfg = ColdConfig::quick(n, 1e-6, 0.0);
    let hi_cfg = ColdConfig::quick(n, 1e-1, 0.0);
    let mut hi_total = 0.0;
    for seed in 0..3u64 {
        let ctx = lo_cfg.context.generate(seed);
        let lo = lo_cfg.synthesize_in_context(ctx.clone(), seed);
        let hi = hi_cfg.synthesize_in_context(ctx, seed);
        assert!(global_clustering(&lo.network.graph()) < 0.05, "trees have ~no triangles");
        hi_total += global_clustering(&hi.network.graph());
    }
    assert!(hi_total > 0.5, "huge k2 must produce clustered (clique-ward) networks");
}

/// §7 (Figs 8–9): the hub cost is what unlocks high CVND; the same
/// contexts without k3 stay well below.
#[test]
fn hub_cost_is_needed_for_high_cvnd() {
    let n = 11;
    let mut no_hub = 0.0;
    let mut with_hub = 0.0;
    for seed in 0..3u64 {
        let base = ColdConfig::quick(n, 1e-4, 0.0);
        let hubby = ColdConfig::quick(n, 1e-4, 500.0);
        let ctx = base.context.generate(seed);
        no_hub += cvnd(&base.synthesize_in_context(ctx.clone(), seed).network.graph());
        with_hub += cvnd(&hubby.synthesize_in_context(ctx, seed).network.graph());
    }
    let (no_hub, with_hub) = (no_hub / 3.0, with_hub / 3.0);
    assert!(no_hub < 1.0, "without k3 the mean CVND ({no_hub}) must stay below 1");
    assert!(with_hub > 1.2, "with a large k3 the mean CVND ({with_hub}) must exceed 1");
}

/// §7: heavy-tailed traffic alone (Pareto 10/9 — the extreme the paper
/// trialled) raises CVND only a little; far less than the hub cost does.
#[test]
fn heavy_tailed_traffic_alone_does_not_substitute_for_k3() {
    let n = 11;
    let mut pareto_cvnd = 0.0;
    let mut hub_cvnd = 0.0;
    for seed in 0..3u64 {
        let pareto = ColdConfig {
            context: ContextConfig {
                population: cold_context::PopulationKind::pareto_10_9(),
                ..ContextConfig::paper_default(n)
            },
            ..ColdConfig::quick(n, 1e-4, 0.0)
        };
        let hubby = ColdConfig::quick(n, 1e-4, 500.0);
        pareto_cvnd += pareto.synthesize(seed).stats.cvnd;
        hub_cvnd += hubby.synthesize(seed).stats.cvnd;
    }
    assert!(
        hub_cvnd > pareto_cvnd + 0.5,
        "hub cost ({hub_cvnd}) must beat heavy tails ({pareto_cvnd}) at creating hubs (summed)"
    );
}

/// Fig 3's qualitative structure on a shared context: initialized GA ≤
/// plain GA and ≤ every greedy heuristic.
#[test]
fn fig3_ordering_holds_pointwise() {
    let cfg = ColdConfig::quick(10, 4e-4, 10.0);
    let ctx = cfg.context.generate(5);
    let init = cfg.synthesize_in_context(ctx.clone(), 5);
    let plain = ColdConfig { mode: SynthesisMode::GaOnly, ..cfg }.synthesize_in_context(ctx, 5);
    assert!(init.best_cost() <= plain.best_cost() + 1e-9);
    for (name, cost) in &init.heuristic_costs {
        assert!(init.best_cost() <= cost + 1e-9, "initialized GA lost to {name}");
    }
}
