//! GA settings (§4 "The genetic algorithm settings" and §5's choices).

use serde::{Deserialize, Serialize};

/// Tunable settings of the genetic algorithm.
///
/// Paper defaults (§5): `T = M = 100` generations/population, tournament
/// parameters `a = 2, b = 10` ("a good tradeoff between convergence speed
/// and reliability"), geometric(½) link mutation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaSettings {
    /// Number of generations `T`.
    pub generations: usize,
    /// Candidates per generation `M` (`num_saved + num_crossover +
    /// num_mutation`).
    pub population: usize,
    /// Elites copied unchanged into the next generation
    /// (*num saved topologies*).
    pub num_saved: usize,
    /// Offspring produced by crossover per generation.
    pub num_crossover: usize,
    /// Offspring produced by mutation per generation.
    pub num_mutation: usize,
    /// Tournament pool size `b`: candidates drawn uniformly at random.
    pub tournament_pool: usize,
    /// Parents kept from the pool `a`: the best `a` of the `b` candidates.
    pub parents: usize,
    /// Success probability of the geometric link-mutation counts
    /// (`0.5` ⇒ on average two link changes per mutation, §4.1.2).
    pub link_mutation_p: f64,
    /// Probability that a mutation is a *node* mutation (leaf-ification)
    /// rather than a *link* mutation.
    pub node_mutation_prob: f64,
    /// Ablation switch: pick crossover parents per link uniformly instead
    /// of weighting them inversely by cost (§4.1.1's default). Leave
    /// `false` to follow the paper.
    pub uniform_crossover_weights: bool,
    /// Edge probability for the Erdős–Rényi topologies that fill the
    /// initial population. `None` ⇒ use the built-in estimate
    /// `p ≈ 2n / C(n,2)` (expected links ≈ 2n, within the observed optimal
    /// range; §4.1 notes this "aids convergence speed … but is otherwise
    /// unnecessary").
    pub init_er_probability: Option<f64>,
    /// Master RNG seed. The run is a pure function of
    /// `(objective, settings, seeds)`.
    pub seed: u64,
    /// Evaluate fitness in parallel with scoped threads.
    pub parallel: bool,
    /// Memoize fitness by chromosome (adjacency bitset), so duplicate
    /// offspring — common once the population starts converging — are never
    /// re-routed. Costs are deterministic functions of the topology, so the
    /// cache changes no result, only the work done (see
    /// [`GaResult::eval_stats`](crate::GaResult)).
    pub fitness_cache: bool,
    /// Optional early stop: abort when the best cost has not improved by
    /// more than `rel_tol` over the last `window` generations. The paper
    /// notes `T = 100` "proved to function similarly" to such a rule (§5).
    pub early_stop: Option<EarlyStop>,
    /// Candidate-link pruning for large `n`: when `Some(k)`, link
    /// mutation only *adds* links between geographic `k`-nearest
    /// neighbors (under [`Objective::distance`](crate::Objective); a pair
    /// qualifies when either endpoint is among the other's `k` nearest).
    /// Removals stay unrestricted and connectivity repair may still
    /// introduce longer links, so the search space keeps every connected
    /// topology reachable — pruning only biases *proposals* toward the
    /// short links the optimizer keeps anyway, which also bounds the
    /// dirty set incremental evaluation has to repair per offspring.
    /// `None` (the default) mutates over all pairs, preserving the
    /// paper's operator and existing RNG streams.
    pub mutation_neighbors: Option<usize>,
    /// Optional stall guard: terminate the run (with
    /// [`StopReason::Stalled`](crate::StopReason)) after this many
    /// consecutive generations without *strict* best-cost improvement.
    /// Unlike [`early_stop`](Self::early_stop), which models the paper's
    /// convergence plateau, this is a runtime guard against degenerate
    /// objectives that never improve at all.
    pub stall_gens: Option<usize>,
}

/// Early-stopping rule (relative-improvement plateau).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStop {
    /// Number of trailing generations examined.
    pub window: usize,
    /// Minimum relative improvement over the window to keep going.
    pub rel_tol: f64,
}

impl GaSettings {
    /// The paper's configuration: `T = M = 100`, `a = 2, b = 10`.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            generations: 100,
            population: 100,
            num_saved: 20,
            num_crossover: 50,
            num_mutation: 30,
            tournament_pool: 10,
            parents: 2,
            link_mutation_p: 0.5,
            node_mutation_prob: 0.3,
            uniform_crossover_weights: false,
            init_er_probability: None,
            seed,
            parallel: true,
            fitness_cache: true,
            early_stop: None,
            mutation_neighbors: None,
            stall_gens: None,
        }
    }

    /// A reduced configuration for fast tests and quick experiment modes:
    /// `T = M = 40` with the same proportions.
    pub fn quick(seed: u64) -> Self {
        Self {
            generations: 40,
            population: 40,
            num_saved: 8,
            num_crossover: 20,
            num_mutation: 12,
            ..Self::paper_default(seed)
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        if self.population == 0 {
            return Err("population must be positive".into());
        }
        if self.num_saved + self.num_crossover + self.num_mutation != self.population {
            return Err(format!(
                "num_saved + num_crossover + num_mutation = {} must equal population {}",
                self.num_saved + self.num_crossover + self.num_mutation,
                self.population
            ));
        }
        if self.num_saved == 0 {
            return Err("need at least one elite (num_saved >= 1)".into());
        }
        if self.parents == 0 || self.parents > self.tournament_pool {
            return Err(format!(
                "parents a = {} must satisfy 1 <= a <= b = {}",
                self.parents, self.tournament_pool
            ));
        }
        if !(0.0 < self.link_mutation_p && self.link_mutation_p <= 1.0) {
            return Err(format!("link_mutation_p = {} must be in (0, 1]", self.link_mutation_p));
        }
        if !(0.0..=1.0).contains(&self.node_mutation_prob) {
            return Err(format!(
                "node_mutation_prob = {} must be in [0, 1]",
                self.node_mutation_prob
            ));
        }
        if let Some(p) = self.init_er_probability {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("init_er_probability = {p} must be in [0, 1]"));
            }
        }
        if let Some(es) = self.early_stop {
            if es.window == 0 || es.rel_tol < 0.0 {
                return Err("early_stop needs window >= 1 and rel_tol >= 0".into());
            }
        }
        if self.stall_gens == Some(0) {
            return Err("stall_gens needs window >= 1".into());
        }
        if self.mutation_neighbors == Some(0) {
            return Err("mutation_neighbors needs k >= 1".into());
        }
        Ok(())
    }

    /// The ER fill probability for `n` nodes: the explicit setting if given,
    /// else `min(1, 2n / C(n,2))`.
    pub fn er_probability(&self, n: usize) -> f64 {
        match self.init_er_probability {
            Some(p) => p,
            None => {
                let pairs = (n * n.saturating_sub(1) / 2).max(1) as f64;
                ((2 * n) as f64 / pairs).min(1.0)
            }
        }
    }
}

impl Default for GaSettings {
    fn default() -> Self {
        Self::paper_default(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let s = GaSettings::paper_default(1);
        assert!(s.validate().is_ok());
        assert_eq!(s.generations, 100);
        assert_eq!(s.population, 100);
        assert_eq!(s.tournament_pool, 10);
        assert_eq!(s.parents, 2);
        assert!(s.fitness_cache, "memoization is on by default");
    }

    #[test]
    fn quick_is_valid_and_smaller() {
        let s = GaSettings::quick(1);
        assert!(s.validate().is_ok());
        assert!(s.population < GaSettings::paper_default(1).population);
    }

    #[test]
    fn validate_catches_mismatched_counts() {
        let mut s = GaSettings::paper_default(0);
        s.num_saved = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_tournament() {
        let mut s = GaSettings::paper_default(0);
        s.parents = 11;
        assert!(s.validate().is_err());
        s.parents = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_mutation_neighbors() {
        let mut s = GaSettings::paper_default(0);
        s.mutation_neighbors = Some(0);
        assert!(s.validate().is_err());
        s.mutation_neighbors = Some(1);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn er_probability_default_formula() {
        let s = GaSettings::paper_default(0);
        // n = 30: 2·30 / 435 ≈ 0.1379
        assert!((s.er_probability(30) - 60.0 / 435.0).abs() < 1e-12);
        // Tiny n clamps at 1.
        assert_eq!(s.er_probability(2), 1.0);
        // Explicit value wins.
        let s2 = GaSettings { init_er_probability: Some(0.25), ..s };
        assert_eq!(s2.er_probability(30), 0.25);
    }
}
