//! Bridges, articulation points and 2-edge-connectivity.
//!
//! §3.2 of the paper excludes redundancy from the PoP-level constraints
//! ("We do not include redundancy, port numbers or other complex
//! constraints at this level") while §2 stresses that the optimization
//! framework makes such extensions easy. This module supplies the
//! survivability substrate for exactly that extension
//! (`cold::resilience`): Tarjan's linear-time bridge and
//! articulation-point detection.
//!
//! A *bridge* is a link whose failure disconnects the network; an
//! *articulation point* is a PoP whose failure does. A connected network
//! with no bridges is 2-edge-connected — it survives any single link cut.

use crate::graph::Graph;

/// Bridges and articulation points of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutStructure {
    /// Bridge edges as `(u, v)` with `u < v`, sorted.
    pub bridges: Vec<(usize, usize)>,
    /// Articulation points, sorted ascending.
    pub articulation_points: Vec<usize>,
}

/// Computes bridges and articulation points with an iterative Tarjan DFS
/// (no recursion, so deep path graphs cannot overflow the stack).
pub fn cut_structure(g: &Graph) -> CutStructure {
    let n = g.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_art = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS with explicit neighbor cursors.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor < g.neighbors(v).len() {
                let w = g.neighbors(v)[*cursor];
                *cursor += 1;
                if disc[w] == usize::MAX {
                    parent[w] = v;
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, 0));
                } else if w != parent[v] {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        bridges.push(if p < v { (p, v) } else { (v, p) });
                    }
                    if p != root && low[v] >= disc[p] {
                        is_art[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_art[root] = true;
        }
    }
    bridges.sort_unstable();
    let articulation_points = (0..n).filter(|&v| is_art[v]).collect();
    CutStructure { bridges, articulation_points }
}

/// Whether the graph is connected and has no bridges (survives any single
/// link failure). Graphs with fewer than 2 nodes count as 2-edge-connected.
pub fn is_two_edge_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    crate::components::is_connected(g) && cut_structure(g).bridges.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_edges_are_all_bridges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let c = cut_structure(&g);
        assert_eq!(c.bridges, vec![(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(c.articulation_points, vec![1, 3]);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let c = cut_structure(&g);
        assert!(c.bridges.is_empty());
        assert!(c.articulation_points.is_empty());
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn barbell_bridge_detected() {
        // Two triangles joined by the single edge (2, 3).
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)])
            .unwrap();
        let c = cut_structure(&g);
        assert_eq!(c.bridges, vec![(2, 3)]);
        assert_eq!(c.articulation_points, vec![2, 3]);
    }

    #[test]
    fn star_hub_is_the_articulation_point() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let c = cut_structure(&g);
        assert_eq!(c.articulation_points, vec![0]);
        assert_eq!(c.bridges.len(), 4);
    }

    #[test]
    fn disconnected_graph_is_not_two_edge_connected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!is_two_edge_connected(&g));
        // …but each edge is still a bridge within its component.
        assert_eq!(cut_structure(&g).bridges.len(), 2);
    }

    #[test]
    fn bridge_removal_matches_brute_force() {
        // Cross-check Tarjan against "remove edge, test connectivity".
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6), (6, 7)],
        )
        .unwrap();
        let fast = cut_structure(&g).bridges;
        let mut slow = Vec::new();
        let m = g.to_adjacency_matrix();
        for (u, v) in m.edges() {
            let mut cut = m.clone();
            cut.set_edge(u, v, false);
            if !crate::components::matrix_is_connected(&cut) {
                slow.push((u, v));
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn trivial_graphs() {
        assert!(is_two_edge_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert!(is_two_edge_connected(&Graph::from_edges(1, &[]).unwrap()));
        let pair = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(!is_two_edge_connected(&pair), "a single edge is a bridge");
    }
}
