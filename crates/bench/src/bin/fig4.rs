//! Regenerates Figure 4 (GA runtime scaling, ~n^3).
fn main() {
    let opts = cold_bench::ExpOptions::from_args();
    let doc = cold_bench::experiments::fig4::run(&opts);
    opts.write_json("fig4", &doc);
}
