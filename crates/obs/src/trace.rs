//! Causal trace context: trace ids, parent-linked span ids, and the
//! thread-local scope stack that stamps every emitted [`crate::Event`].
//!
//! A *trace* groups every journal event of one logical unit of work — a
//! CLI invocation or one `cold-serve` job. Its 16-hex-digit id is minted
//! once at the entry point (the run seed for the CLI, the content-
//! addressed job id for the service) and never changes. Within a trace,
//! *spans* form a tree: each [`TraceScope`] pushed onto the thread-local
//! stack mints a fresh span id whose parent is the enclosing scope, and
//! [`crate::emit`] stamps whatever context is current onto each event as
//! `trace_id` / `span_id` / `parent_id` fields.
//!
//! Opening a scope emits a `span_start` event, so every span id that can
//! appear as a `parent_id` is anchored in the journal *before* any of
//! its children — parent resolution holds even for journals truncated by
//! a crash. Closing a [`crate::Span`] emits the usual `span` event with
//! the elapsed seconds under the same span id.
//!
//! Context does not cross threads implicitly: code that fans work out
//! (ensemble workers, the deadline watchdog, serve workers) snapshots
//! [`current`] and re-installs it with [`enter`] on the other side.
//!
//! Everything here is inert while no trace sink is installed: the scope
//! constructors check [`crate::is_enabled`] first, so the disabled path
//! stays within the one-atomic-load overhead budget.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// One stamped trace context: the ids an event carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id shared by every event of the job/run (16 hex digits).
    pub trace_id: String,
    /// This span's id (16 hex digits), unique within the process.
    pub span_id: String,
    /// The enclosing span's id; `None` for a trace root.
    pub parent_id: Option<String>,
}

thread_local! {
    static STACK: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide span counter: hashed with the trace id into span ids so
/// two scopes can never collide, whatever thread they open on.
static SPAN_COUNTER: AtomicU64 = AtomicU64::new(1);

/// FNV-1a over the trace id and a fresh counter value: 16 lowercase hex
/// digits, cheap, dependency-free, unique per process.
fn mint_span_id(trace_id: &str) -> String {
    let n = SPAN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in trace_id.bytes().chain(n.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The innermost context on this thread's scope stack, if any.
pub fn current() -> Option<TraceCtx> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// A child context of the current scope (minted but *not* pushed) — used
/// to give leaf events like GA generations their own span ids without
/// the cost of a full scope. `None` when no scope is active.
pub fn child_ctx() -> Option<TraceCtx> {
    let parent = current()?;
    Some(TraceCtx {
        span_id: mint_span_id(&parent.trace_id),
        parent_id: Some(parent.span_id),
        trace_id: parent.trace_id,
    })
}

/// RAII scope: pops its context from the thread-local stack on drop.
/// Construct via [`root`], [`child`], or [`enter`].
#[derive(Debug)]
#[must_use = "a trace scope is active until it is dropped"]
pub struct TraceScope {
    pushed: bool,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.pushed {
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

fn push(ctx: TraceCtx) -> TraceScope {
    STACK.with(|s| s.borrow_mut().push(ctx));
    TraceScope { pushed: true }
}

const INERT: TraceScope = TraceScope { pushed: false };

/// Opens a trace *root* scope: a fresh span with no parent under the
/// given trace id, anchored in the journal by a `span_start` event.
/// Inert (and silent) while no trace sink is installed.
pub fn root(name: &str, trace_id: &str) -> TraceScope {
    if !crate::is_enabled() {
        return INERT;
    }
    let ctx = TraceCtx {
        trace_id: trace_id.to_string(),
        span_id: mint_span_id(trace_id),
        parent_id: None,
    };
    let scope = push(ctx);
    crate::emit(&crate::Event::SpanStart(crate::SpanStartEvent { name: name.to_string() }));
    scope
}

/// Opens a child scope of the current context (or a root scope under the
/// given fallback trace id when the stack is empty), anchored by a
/// `span_start` event. Inert while no trace sink is installed.
pub fn child(name: &str, fallback_trace_id: &str) -> TraceScope {
    if !crate::is_enabled() {
        return INERT;
    }
    let ctx = child_ctx().unwrap_or_else(|| TraceCtx {
        trace_id: fallback_trace_id.to_string(),
        span_id: mint_span_id(fallback_trace_id),
        parent_id: None,
    });
    let scope = push(ctx);
    crate::emit(&crate::Event::SpanStart(crate::SpanStartEvent { name: name.to_string() }));
    scope
}

/// Re-installs a snapshotted context on this thread (cross-thread
/// propagation). Emits nothing: the context was already anchored where
/// it was minted.
pub fn enter(ctx: TraceCtx) -> TraceScope {
    push(ctx)
}

/// The trace-field envelope read back off a journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFields {
    /// The `trace_id` field.
    pub trace_id: String,
    /// The `span_id` field.
    pub span_id: String,
    /// The `parent_id` field, when present.
    pub parent_id: Option<String>,
}

fn well_formed_id(id: &str) -> bool {
    id.len() == 16 && id.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

impl TraceFields {
    /// Extracts the trace envelope from a raw journal object: `Ok(None)`
    /// when the line carries no trace fields at all, an error when they
    /// are partial or malformed (ids must be 16 lowercase hex digits).
    pub fn from_value(v: &serde_json::Value) -> Result<Option<TraceFields>, String> {
        let Some(obj) = v.as_object() else {
            return Err("journal line is not a JSON object".into());
        };
        let get = |key: &str| -> Result<Option<String>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(val) => match val.as_str() {
                    Some(s) if well_formed_id(s) => Ok(Some(s.to_string())),
                    _ => Err(format!("field `{key}` is not 16 lowercase hex digits: {val}")),
                },
            }
        };
        let trace_id = get("trace_id")?;
        let span_id = get("span_id")?;
        let parent_id = get("parent_id")?;
        match (trace_id, span_id) {
            (None, None) => match parent_id {
                None => Ok(None),
                Some(_) => Err("`parent_id` present without `trace_id`/`span_id`".into()),
            },
            (Some(trace_id), Some(span_id)) => {
                Ok(Some(TraceFields { trace_id, span_id, parent_id }))
            }
            _ => Err("`trace_id` and `span_id` must appear together".into()),
        }
    }
}

/// Checks the causal invariants of a traced journal, returning one
/// message per violation (empty = valid):
///
/// - every `parent_id` resolves to a `span_id` seen on some event of the
///   *same trace* (scope-open anchoring makes this hold even for
///   journals truncated mid-run);
/// - every trace has at least one root event (no `parent_id`);
/// - with `require_all`, every event must carry trace fields.
pub fn validate_trace(
    events: &[(crate::Event, Option<TraceFields>)],
    require_all: bool,
) -> Vec<String> {
    use std::collections::{HashMap, HashSet};
    let mut problems = Vec::new();
    let mut spans: HashSet<(&str, &str)> = HashSet::new();
    let mut roots: HashMap<&str, usize> = HashMap::new();
    for (_, fields) in events {
        if let Some(f) = fields {
            spans.insert((f.trace_id.as_str(), f.span_id.as_str()));
            let count = roots.entry(f.trace_id.as_str()).or_insert(0);
            if f.parent_id.is_none() {
                *count += 1;
            }
        }
    }
    for (i, (event, fields)) in events.iter().enumerate() {
        let line = i + 1;
        match fields {
            None if require_all => {
                problems
                    .push(format!("line {line}: {} event carries no trace fields", event.kind()));
            }
            None => {}
            Some(f) => {
                if let Some(parent) = &f.parent_id {
                    if !spans.contains(&(f.trace_id.as_str(), parent.as_str())) {
                        problems.push(format!(
                            "line {line}: parent_id {parent} does not resolve within trace {}",
                            f.trace_id
                        ));
                    }
                }
            }
        }
    }
    for (trace, root_count) in roots {
        if root_count == 0 {
            problems.push(format!("trace {trace} has no root event (every event has a parent)"));
        }
    }
    problems.sort();
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::telemetry_lock;
    use crate::{Event, SpanEvent, TraceMode};

    #[test]
    fn span_ids_are_unique_and_well_formed() {
        let a = mint_span_id("00000000000000aa");
        let b = mint_span_id("00000000000000aa");
        assert_ne!(a, b);
        assert!(well_formed_id(&a) && well_formed_id(&b));
        assert!(!well_formed_id("xyz"));
        assert!(!well_formed_id("ABCDEF0123456789"), "uppercase is rejected");
    }

    #[test]
    fn scopes_nest_and_pop_in_lifo_order() {
        let _guard = telemetry_lock();
        let path =
            std::env::temp_dir().join(format!("cold-obs-trace-{}.jsonl", std::process::id()));
        crate::configure(TraceMode::Journal(path.clone())).expect("journal sink");
        {
            let _root = root("test.root", "00000000000000ff");
            let root_ctx = current().expect("root is current");
            assert_eq!(root_ctx.trace_id, "00000000000000ff");
            assert_eq!(root_ctx.parent_id, None);
            {
                let _child = child("test.child", "ignored");
                let child_ctx = current().expect("child is current");
                assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
                assert_eq!(child_ctx.parent_id.as_deref(), Some(root_ctx.span_id.as_str()));
                crate::emit(&Event::Span(SpanEvent { name: "leaf".into(), seconds: 0.0 }));
            }
            assert_eq!(current().expect("back to root").span_id, root_ctx.span_id);
        }
        assert_eq!(current(), None);
        crate::configure(TraceMode::Off).unwrap();

        let text = std::fs::read_to_string(&path).expect("journal written");
        let traced = crate::parse_journal_traced(&text).expect("journal validates");
        assert_eq!(traced.len(), 3, "two span_start anchors and one leaf");
        assert!(validate_trace(&traced, true).is_empty(), "{:?}", validate_trace(&traced, true));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enter_reinstalls_a_snapshot_on_another_thread() {
        let _guard = telemetry_lock();
        let path =
            std::env::temp_dir().join(format!("cold-obs-enter-{}.jsonl", std::process::id()));
        crate::configure(TraceMode::Journal(path.clone())).expect("journal sink");
        let snapshot = {
            let _root = root("test.root", "0000000000000011");
            let snapshot = current().expect("root current");
            std::thread::scope(|scope| {
                let ctx = snapshot.clone();
                scope.spawn(move || {
                    assert_eq!(current(), None, "fresh thread starts without context");
                    let _g = enter(ctx.clone());
                    assert_eq!(current(), Some(ctx));
                    crate::emit(&Event::Span(SpanEvent { name: "remote".into(), seconds: 0.0 }));
                });
            });
            snapshot
        };
        crate::configure(TraceMode::Off).unwrap();
        let text = std::fs::read_to_string(&path).expect("journal written");
        let traced = crate::parse_journal_traced(&text).expect("journal validates");
        let remote = traced
            .iter()
            .find(|(e, _)| matches!(e, Event::Span(s) if s.name == "remote"))
            .expect("remote span journaled");
        assert_eq!(remote.1.as_ref().expect("stamped").span_id, snapshot.span_id);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validate_trace_flags_dangling_parents_and_missing_fields() {
        let leaf = |trace: &str, span: &str, parent: Option<&str>| {
            (
                Event::Span(SpanEvent { name: "x".into(), seconds: 0.0 }),
                Some(TraceFields {
                    trace_id: trace.into(),
                    span_id: span.into(),
                    parent_id: parent.map(str::to_string),
                }),
            )
        };
        let t = "00000000000000aa";
        let good = vec![
            leaf(t, "00000000000000b0", None),
            leaf(t, "00000000000000b1", Some("00000000000000b0")),
        ];
        assert!(validate_trace(&good, true).is_empty());

        let dangling = vec![
            leaf(t, "00000000000000b0", None),
            leaf(t, "00000000000000b1", Some("00000000000000bf")),
        ];
        let problems = validate_trace(&dangling, false);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("does not resolve"), "{problems:?}");

        let untraced = vec![(Event::Span(SpanEvent { name: "x".into(), seconds: 0.0 }), None)];
        assert!(validate_trace(&untraced, false).is_empty());
        assert_eq!(validate_trace(&untraced, true).len(), 1);

        let parentless = vec![leaf(t, "00000000000000b1", Some("00000000000000b1"))];
        let problems = validate_trace(&parentless, false);
        assert!(problems.iter().any(|p| p.contains("no root event")), "{problems:?}");
    }

    #[test]
    fn partial_or_malformed_envelopes_are_rejected() {
        let ok: serde_json::Value = serde_json::json!({
            "event": "span", "trace_id": "00000000000000aa",
            "span_id": "00000000000000bb", "parent_id": "00000000000000cc",
        });
        let fields = TraceFields::from_value(&ok).unwrap().unwrap();
        assert_eq!(fields.parent_id.as_deref(), Some("00000000000000cc"));
        let none: serde_json::Value = serde_json::json!({"event": "span"});
        assert_eq!(TraceFields::from_value(&none).unwrap(), None);
        let partial: serde_json::Value =
            serde_json::json!({"event": "span", "trace_id": "00000000000000aa"});
        assert!(TraceFields::from_value(&partial).is_err());
        let bad: serde_json::Value =
            serde_json::json!({"event": "span", "trace_id": "nope", "span_id": "00000000000000bb"});
        assert!(TraceFields::from_value(&bad).is_err());
        let orphan_parent: serde_json::Value =
            serde_json::json!({"event": "span", "parent_id": "00000000000000cc"});
        assert!(TraceFields::from_value(&orphan_parent).is_err());
    }
}
