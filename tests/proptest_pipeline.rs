//! Property-based tests across the full pipeline: arbitrary (sane) cost
//! parameters and seeds must always yield connected, capacity-feasible,
//! internally consistent networks.

use cold::{ColdConfig, SynthesisMode};
use cold_cost::CostParams;
use cold_ga::GaSettings;
use cold_graph::components::matrix_is_connected;
use proptest::prelude::*;

/// A tiny-but-valid GA so each proptest case stays fast.
fn tiny_ga(seed: u64) -> GaSettings {
    GaSettings {
        generations: 8,
        population: 12,
        num_saved: 3,
        num_crossover: 6,
        num_mutation: 3,
        parallel: false,
        ..GaSettings::quick(seed)
    }
}

fn arb_params() -> impl Strategy<Value = CostParams> {
    // Log-uniform-ish ranges covering all the paper's regimes.
    (
        0.0f64..50.0,                         // k0
        0.0f64..5.0,                          // k1
        -14f64..-4.0,                         // ln k2
        proptest::option::of(0.0f64..2000.0), // k3 (None -> 0)
    )
        .prop_map(|(k0, k1, lk2, k3)| CostParams::new(k0, k1, lk2.exp(), k3.unwrap_or(0.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_always_yields_valid_networks(
        params in arb_params(),
        n in 5usize..12,
        seed in 0u64..1000,
    ) {
        let cfg = ColdConfig {
            context: cold_context::ContextConfig::paper_default(n),
            params,
            ga: tiny_ga(0),
            mode: SynthesisMode::GaOnly,
            random_greedy: Default::default(),
        };
        let r = cfg.synthesize(seed);
        let net = &r.network;
        // Connected and spanning.
        prop_assert!(matrix_is_connected(&net.topology));
        prop_assert!(net.link_count() >= n - 1);
        prop_assert!(net.link_count() <= n * (n - 1) / 2);
        // Capacity covers load on every link.
        for l in &net.links {
            prop_assert!(l.capacity + 1e-9 >= l.load);
            prop_assert!(l.length >= 0.0 && l.length.is_finite());
        }
        // Cost components are consistent and nonnegative.
        prop_assert!(net.cost.existence >= -1e-12);
        prop_assert!(net.cost.length >= -1e-12);
        prop_assert!(net.cost.bandwidth >= -1e-12);
        prop_assert!(net.cost.hub >= -1e-12);
        let total = net.cost.existence + net.cost.length + net.cost.bandwidth + net.cost.hub;
        prop_assert!((total - net.total_cost()).abs() < 1e-9 * (1.0 + total.abs()));
        // Best-cost history is monotone and ends at the reported cost.
        for w in r.best_cost_history.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
        prop_assert!(
            (r.best_cost_history.last().unwrap() - net.total_cost()).abs()
                < 1e-9 * (1.0 + net.total_cost())
        );
        // Stats are self-consistent with the topology.
        prop_assert_eq!(r.stats.n, n);
        prop_assert_eq!(r.stats.m, net.link_count());
        prop_assert_eq!(r.stats.hubs + r.stats.leaves, n);
    }

    #[test]
    fn same_seed_same_network(params in arb_params(), seed in 0u64..100) {
        let cfg = ColdConfig {
            context: cold_context::ContextConfig::paper_default(7),
            params,
            ga: tiny_ga(0),
            mode: SynthesisMode::GaOnly,
            random_greedy: Default::default(),
        };
        let a = cfg.synthesize(seed);
        let b = cfg.synthesize(seed);
        prop_assert_eq!(a.network.topology, b.network.topology);
        prop_assert_eq!(a.best_cost_history, b.best_cost_history);
    }

    #[test]
    fn heuristics_always_produce_connected_feasible_networks(
        k2 in -12f64..-4.0,
        k3 in 0.0f64..500.0,
        seed in 0u64..200,
    ) {
        let ctx = cold_context::ContextConfig::paper_default(8).generate(seed);
        let eval = cold_cost::CostEvaluator::new(&ctx, CostParams::paper(k2.exp(), k3));
        for (name, r) in cold_heuristics::all_heuristics(&eval, &Default::default(), seed) {
            prop_assert!(matrix_is_connected(&r.topology), "{} disconnected", name);
            let recomputed = eval.cost(&r.topology).unwrap();
            prop_assert!((recomputed - r.cost).abs() < 1e-6 * (1.0 + r.cost), "{} cost drift", name);
        }
    }

    #[test]
    fn context_scaling_preserves_optimal_topology_shape(
        seed in 0u64..50,
    ) {
        // Costs are relative (§3.2.3): multiplying all four k's by a
        // constant must not change the chosen topology.
        let base = ColdConfig {
            context: cold_context::ContextConfig::paper_default(8),
            params: CostParams::paper(4e-4, 10.0),
            ga: tiny_ga(0),
            mode: SynthesisMode::GaOnly,
            random_greedy: Default::default(),
        };
        let scaled = ColdConfig { params: base.params.scaled(7.5), ..base };
        let a = base.synthesize(seed);
        let b = scaled.synthesize(seed);
        prop_assert_eq!(a.network.topology.clone(), b.network.topology.clone());
        prop_assert!((b.best_cost() - 7.5 * a.best_cost()).abs() < 1e-6 * b.best_cost());
    }
}
