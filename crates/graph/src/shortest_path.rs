//! Dijkstra shortest paths, shortest-path trees, and BFS hop distances.
//!
//! COLD routes all traffic on shortest paths by *geometric length* (§3.2.1):
//! "we will make the natural choice of shortest-path routing in the model,
//! which will minimize the length of routes, and hence the bandwidth
//! dependent component of cost". The all-pairs computation here is the
//! dominant O(n³) term in the GA's runtime (Fig 4).

use crate::graph::Graph;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single-source shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The source node.
    pub source: usize,
    /// `dist[v]` is the shortest distance from `source` to `v`
    /// (`f64::INFINITY` when unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` is `v`'s predecessor on a shortest path from `source`.
    /// `parent[source] == source`; unreachable nodes have `usize::MAX`.
    pub parent: Vec<usize>,
}

impl ShortestPathTree {
    /// Reconstructs the node sequence `source → … → target`, or `None` if
    /// `target` is unreachable.
    pub fn path_to(&self, target: usize) -> Option<Vec<usize>> {
        if target == self.source {
            return Some(vec![self.source]);
        }
        if self.parent[target] == usize::MAX {
            return None;
        }
        let mut path = vec![target];
        let mut v = target;
        while v != self.source {
            v = self.parent[v];
            path.push(v);
            debug_assert!(path.len() <= self.dist.len(), "parent cycle");
        }
        path.reverse();
        Some(path)
    }

    /// Whether every node is reachable from the source.
    pub fn all_reachable(&self) -> bool {
        self.dist.iter().all(|d| d.is_finite())
    }
}

/// Max-heap entry ordered so the smallest `(dist, node)` pops first.
#[derive(Debug)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min element.
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

/// Reusable buffers for repeated Dijkstra runs.
///
/// All-pairs routing runs one Dijkstra per source per candidate topology,
/// which makes the four per-call allocations (`dist`, `parent`, `done` and
/// the heap) the dominant allocator traffic of the GA's hot path. A
/// workspace amortizes them: [`run`](Self::run) reuses the buffers and the
/// results stay readable through [`dist`](Self::dist) /
/// [`parent`](Self::parent) until the next run.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<f64>,
    parent: Vec<usize>,
    done: Vec<bool>,
    heap: BinaryHeap<HeapItem>,
    order: Vec<usize>,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs Dijkstra from `source`, overwriting the workspace buffers.
    ///
    /// Produces bit-identical distances and parents to [`dijkstra`].
    ///
    /// # Panics
    /// As for [`dijkstra`].
    pub fn run(&mut self, g: &Graph, source: usize, len: impl Fn(usize, usize) -> f64) {
        run_dijkstra(
            g,
            source,
            len,
            &mut self.dist,
            &mut self.parent,
            &mut self.done,
            &mut self.heap,
            &mut self.order,
        );
    }

    /// Runs Dijkstra from `source` over a CSR adjacency: node `u`'s
    /// neighbors are `node[start[u]..start[u + 1]]` with arc lengths at the
    /// same indices of `len` (`n = start.len() - 1`).
    ///
    /// With a CSR built in the same neighbor order from the same length
    /// function, this is bit-identical to [`run`](Self::run) — the
    /// relaxation sequence and arithmetic are unchanged, only the length
    /// lookups are precomputed. Repeated sources on one graph amortize the
    /// CSR build, and the contiguous length array replaces ~2m closure
    /// calls per source.
    ///
    /// # Panics
    /// Panics if `source >= n`. Lengths must already be validated
    /// non-negative by the CSR builder.
    pub fn run_csr(&mut self, source: usize, start: &[usize], node: &[usize], len: &[f64]) {
        let n = start.len().saturating_sub(1);
        assert!(source < n, "source {source} out of range (n={n})");
        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.parent.clear();
        self.parent.resize(n, usize::MAX);
        self.done.clear();
        self.done.resize(n, false);
        self.heap.clear();
        self.order.clear();
        self.dist[source] = 0.0;
        self.parent[source] = source;
        self.heap.push(HeapItem { dist: 0.0, node: source });
        while let Some(HeapItem { dist: d, node: u }) = self.heap.pop() {
            if self.done[u] {
                continue;
            }
            self.done[u] = true;
            self.order.push(u);
            for k in start[u]..start[u + 1] {
                let v = node[k];
                let nd = d + len[k];
                // Strict `<` makes the parent the *first* relaxer to reach
                // the final label. Relaxers are settled vertices, so they
                // arrive in `(dist, id)` heap order: under equal-cost paths
                // the parent is canonically the predecessor minimizing
                // `(dist[u], u)` — a property of the label set, not of the
                // relaxation schedule, so delta-repaired trees agree.
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.parent[v] = u;
                    self.heap.push(HeapItem { dist: nd, node: v });
                }
            }
        }
    }

    /// Distances of the last run (`f64::INFINITY` when unreachable).
    pub fn dist(&self) -> &[f64] {
        &self.dist
    }

    /// Parent pointers of the last run (`parent[source] == source`,
    /// `usize::MAX` when unreachable).
    pub fn parent(&self) -> &[usize] {
        &self.parent
    }

    /// Settle order of the last run: reachable nodes in the order Dijkstra
    /// finalized them (nondecreasing distance, source first; unreachable
    /// nodes absent). Every tree child appears strictly *after* its parent
    /// — zero-length edges included, since a child's final label is
    /// assigned no earlier than at its parent's settling and it pops
    /// strictly later — so the reversed order is a children-first
    /// traversal of the shortest-path tree.
    pub fn settle_order(&self) -> &[usize] {
        &self.order
    }
}

/// Shared Dijkstra core writing into caller-provided buffers.
#[allow(clippy::too_many_arguments)]
fn run_dijkstra(
    g: &Graph,
    source: usize,
    len: impl Fn(usize, usize) -> f64,
    dist: &mut Vec<f64>,
    parent: &mut Vec<usize>,
    done: &mut Vec<bool>,
    heap: &mut BinaryHeap<HeapItem>,
    order: &mut Vec<usize>,
) {
    let n = g.n();
    assert!(source < n, "source {source} out of range (n={n})");
    dist.clear();
    dist.resize(n, f64::INFINITY);
    parent.clear();
    parent.resize(n, usize::MAX);
    done.clear();
    done.resize(n, false);
    heap.clear();
    order.clear();
    dist[source] = 0.0;
    parent[source] = source;
    heap.push(HeapItem { dist: 0.0, node: source });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        order.push(u);
        for &v in g.neighbors(u) {
            let w = len(u, v);
            assert!(w >= 0.0, "negative or NaN edge length on ({u},{v}): {w}");
            let nd = d + w;
            // Same canonical tie-break as `run_csr`: first relaxer wins,
            // which in settle order is the `(dist[u], u)`-minimal parent.
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
}

/// Dijkstra's algorithm from `source` with edge lengths given by `len`.
///
/// `len(u, v)` is only called for actual edges of `g` and must be
/// non-negative and finite. Equal-cost ties are resolved deterministically:
/// the parent is the predecessor minimizing `(dist, node id)`, so the
/// returned tree is a pure function of its inputs and agrees bit-for-bit
/// with incrementally repaired trees.
///
/// # Panics
/// Panics if `source >= g.n()` or a negative/NaN length is produced.
pub fn dijkstra(g: &Graph, source: usize, len: impl Fn(usize, usize) -> f64) -> ShortestPathTree {
    let n = g.n();
    let mut dist = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    let mut done = Vec::with_capacity(n);
    let mut heap = BinaryHeap::with_capacity(n);
    let mut order = Vec::with_capacity(n);
    run_dijkstra(g, source, len, &mut dist, &mut parent, &mut done, &mut heap, &mut order);
    ShortestPathTree { source, dist, parent }
}

/// All-pairs shortest paths: one [`ShortestPathTree`] per source.
///
/// O(n · (m log n)) — the routing/capacity computation of §3.2.1 calls this
/// once per candidate topology, which is the dominant cost of the GA.
pub fn apsp(g: &Graph, len: impl Fn(usize, usize) -> f64 + Copy) -> Vec<ShortestPathTree> {
    (0..g.n()).map(|s| dijkstra(g, s, len)).collect()
}

/// BFS hop counts from `source`; `usize::MAX` marks unreachable nodes.
pub fn bfs_hops(g: &Graph, source: usize) -> Vec<usize> {
    let n = g.n();
    assert!(source < n, "source {source} out of range (n={n})");
    let mut hops = vec![usize::MAX; n];
    hops[source] = 0;
    let mut queue = std::collections::VecDeque::with_capacity(n);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if hops[v] == usize::MAX {
                hops[v] = hops[u] + 1;
                queue.push_back(v);
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square with one diagonal:
    /// 0-1 (1.0), 1-2 (1.0), 2-3 (1.0), 3-0 (1.0), 0-2 (1.5)
    fn square() -> (Graph, impl Fn(usize, usize) -> f64 + Copy) {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let len = |u: usize, v: usize| {
            let (u, v) = if u < v { (u, v) } else { (v, u) };
            match (u, v) {
                (0, 2) => 1.5,
                _ => 1.0,
            }
        };
        (g, len)
    }

    #[test]
    fn dijkstra_picks_cheaper_diagonal() {
        let (g, len) = square();
        let t = dijkstra(&g, 0, len);
        assert_eq!(t.dist[0], 0.0);
        assert_eq!(t.dist[1], 1.0);
        assert_eq!(t.dist[2], 1.5, "direct diagonal beats the two-hop path of length 2");
        assert_eq!(t.dist[3], 1.0);
        assert_eq!(t.path_to(2), Some(vec![0, 2]));
    }

    #[test]
    fn path_reconstruction_on_path_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let t = dijkstra(&g, 0, |_, _| 1.0);
        assert_eq!(t.path_to(3), Some(vec![0, 1, 2, 3]));
        assert_eq!(t.path_to(0), Some(vec![0]));
    }

    #[test]
    fn unreachable_nodes_are_reported() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let t = dijkstra(&g, 0, |_, _| 1.0);
        assert!(t.dist[2].is_infinite());
        assert_eq!(t.path_to(2), None);
        assert!(!t.all_reachable());
    }

    #[test]
    fn apsp_is_symmetric_for_undirected_graphs() {
        let (g, len) = square();
        let trees = apsp(&g, len);
        for s in 0..4 {
            for t in 0..4 {
                assert!(
                    (trees[s].dist[t] - trees[t].dist[s]).abs() < 1e-12,
                    "dist({s},{t}) asymmetric"
                );
            }
        }
    }

    #[test]
    fn bfs_hops_counts_edges() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = bfs_hops(&g, 0);
        assert_eq!(h[..4], [0, 1, 2, 3]);
        assert_eq!(h[4], usize::MAX);
    }

    #[test]
    fn workspace_matches_fresh_dijkstra_across_reuse() {
        let (g, len) = square();
        let other = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut ws = DijkstraWorkspace::new();
        for s in 0..4 {
            ws.run(&g, s, len);
            let fresh = dijkstra(&g, s, len);
            assert_eq!(ws.dist(), &fresh.dist[..]);
            assert_eq!(ws.parent(), &fresh.parent[..]);
        }
        // Reuse on a *larger* graph must resize, not truncate.
        ws.run(&other, 5, |_, _| 1.0);
        let fresh = dijkstra(&other, 5, |_, _| 1.0);
        assert_eq!(ws.dist(), &fresh.dist[..]);
        assert_eq!(ws.parent(), &fresh.parent[..]);
    }

    #[test]
    fn csr_run_matches_closure_run_and_orders_children_after_parents() {
        // Includes a zero-length edge (1,2): settle order must still place
        // tree child after parent despite the distance tie.
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (1, 3)]).unwrap();
        let len = |u: usize, v: usize| {
            let (u, v) = if u < v { (u, v) } else { (v, u) };
            if (u, v) == (1, 2) {
                0.0
            } else {
                1.0
            }
        };
        // CSR in g.neighbors order.
        let n = g.n();
        let (mut start, mut node, mut elen) = (vec![0], Vec::new(), Vec::new());
        for u in 0..n {
            for &v in g.neighbors(u) {
                node.push(v);
                elen.push(len(u, v));
            }
            start.push(node.len());
        }
        let mut csr_ws = DijkstraWorkspace::new();
        let mut ws = DijkstraWorkspace::new();
        for s in 0..n {
            csr_ws.run_csr(s, &start, &node, &elen);
            ws.run(&g, s, len);
            assert_eq!(csr_ws.dist(), ws.dist());
            assert_eq!(csr_ws.parent(), ws.parent());
            assert_eq!(csr_ws.settle_order(), ws.settle_order());
            let order = csr_ws.settle_order();
            assert_eq!(order[0], s, "source settles first");
            assert_eq!(order.len(), n, "connected: everyone settles");
            let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
            for v in 0..n {
                if v != s {
                    let p = csr_ws.parent()[v];
                    assert!(pos(p) < pos(v), "parent {p} must settle before child {v} (s={s})");
                }
            }
        }
    }

    #[test]
    fn deterministic_under_ties() {
        // Two equal-length routes 0-1-3 and 0-2-3; tie-break must be stable.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let a = dijkstra(&g, 0, |_, _| 1.0);
        let b = dijkstra(&g, 0, |_, _| 1.0);
        assert_eq!(a.parent, b.parent);
        // Lower-indexed parent wins the tie.
        assert_eq!(a.parent[3], 1);
    }

    #[test]
    fn equal_cost_parallel_routes_pick_the_dist_then_id_minimal_parent() {
        // Ladder with many parallel equal-weight routes: 0-{1,2}-{3,4}-5,
        // plus a same-length route into 3 via higher-indexed 4 won't matter.
        // Every tie must resolve to the predecessor with the smallest
        // (dist, id), independent of relaxation schedule.
        let g =
            Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (2, 4), (3, 5), (4, 5)])
                .unwrap();
        let t = dijkstra(&g, 0, |_, _| 1.0);
        assert_eq!(t.dist, vec![0.0, 1.0, 1.0, 2.0, 2.0, 3.0]);
        // 3 and 4 are reachable at cost 2 via both 1 and 2; 1 settles first.
        assert_eq!(t.parent[3], 1);
        assert_eq!(t.parent[4], 1);
        // 5 is reachable at cost 3 via both 3 and 4; 3 settles first.
        assert_eq!(t.parent[5], 3);

        // The CSR runner agrees exactly, and so does a CSR with the
        // neighbor lists reversed — the canonical parent does not depend
        // on per-vertex relaxation order.
        let n = g.n();
        let build = |rev: bool| {
            let (mut start, mut node, mut elen) = (vec![0], Vec::new(), Vec::new());
            for u in 0..n {
                let mut nbrs: Vec<usize> = g.neighbors(u).to_vec();
                if rev {
                    nbrs.reverse();
                }
                for v in nbrs {
                    node.push(v);
                    elen.push(1.0);
                }
                start.push(node.len());
            }
            (start, node, elen)
        };
        for rev in [false, true] {
            let (start, node, elen) = build(rev);
            let mut ws = DijkstraWorkspace::new();
            ws.run_csr(0, &start, &node, &elen);
            assert_eq!(ws.dist(), &t.dist[..], "rev={rev}");
            assert_eq!(ws.parent(), &t.parent[..], "rev={rev}");
        }
    }
}
