//! Criterion benches for the optimizers: the GA (Fig 4's subject, plus the
//! parallel-evaluation ablation) and the §5 greedy heuristics.

use cold::{ColdConfig, ColdMultiObjective, ColdObjective, SynthesisMode};
use cold_cost::{CostEvaluator, CostParams};
use cold_ga::{hypervolume, GaSettings, GeneticAlgorithm, ParetoGa};
use cold_heuristics::{
    complete_heuristic, greedy_attachment, mst_heuristic, random_greedy, RandomGreedyConfig,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// Small GA settings so the bench iterates in reasonable time; scaling
/// shape (Fig 4) comes from varying n at fixed T = M.
fn bench_settings(seed: u64, parallel: bool) -> GaSettings {
    GaSettings {
        generations: 10,
        population: 20,
        num_saved: 4,
        num_crossover: 10,
        num_mutation: 6,
        parallel,
        ..GaSettings::quick(seed)
    }
}

fn bench_ga_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ga_runtime");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let cfg = ColdConfig::paper(n, 4e-4, 10.0);
        let ctx = cfg.context.generate(1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let obj = ColdObjective::new(&ctx, cfg.params);
                let ga = GeneticAlgorithm::new(&obj, bench_settings(7, false));
                black_box(ga.run().best.cost)
            });
        });
    }
    group.finish();
}

fn bench_ga_parallelism(c: &mut Criterion) {
    // The parallel-evaluation ablation: same GA, serial vs threaded
    // fitness evaluation (worthwhile from moderate n upward).
    let mut group = c.benchmark_group("ga_parallel");
    group.sample_size(10);
    let n = 60;
    let cfg = ColdConfig::paper(n, 4e-4, 10.0);
    let ctx = cfg.context.generate(2);
    for parallel in [false, true] {
        let label = if parallel { "parallel" } else { "serial" };
        group.bench_function(label, |b| {
            b.iter(|| {
                let obj = ColdObjective::new(&ctx, cfg.params);
                let ga = GeneticAlgorithm::new(&obj, bench_settings(8, parallel));
                black_box(ga.run().best.cost)
            });
        });
    }
    group.finish();
}

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    let n = 20;
    let ctx = ColdConfig::paper(n, 4e-4, 10.0).context.generate(3);
    let eval = CostEvaluator::new(&ctx, CostParams::paper(4e-4, 10.0));
    group.bench_function("complete", |b| b.iter(|| black_box(complete_heuristic(&eval).cost)));
    group.bench_function("mst", |b| b.iter(|| black_box(mst_heuristic(&eval).cost)));
    group.bench_function("greedy_attachment", |b| {
        b.iter(|| black_box(greedy_attachment(&eval).cost))
    });
    group.bench_function("random_greedy_x3", |b| {
        b.iter(|| black_box(random_greedy(&eval, &RandomGreedyConfig { permutations: 3 }, 4).cost))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(10);
    let mut cfg = ColdConfig::quick(15, 4e-4, 10.0);
    cfg.ga = bench_settings(9, false);
    for mode in [SynthesisMode::GaOnly, SynthesisMode::Initialized] {
        let label = match mode {
            SynthesisMode::GaOnly => "plain_ga",
            SynthesisMode::Initialized => "initialized",
        };
        let cfg = ColdConfig { mode, ..cfg };
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(cfg.synthesize(seed).best_cost())
            });
        });
    }
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    // NSGA-II vs the scalar GA at the same budget, plus the exact
    // hypervolume computation over a realistic archive-sized front.
    let mut group = c.benchmark_group("pareto");
    group.sample_size(10);
    let n = 15;
    let cfg = ColdConfig::paper(n, 4e-4, 10.0);
    let ctx = cfg.context.generate(4);
    group.bench_function("nsga2_run", |b| {
        b.iter(|| {
            let obj = ColdMultiObjective::new(&ctx, cfg.params);
            let ga = ParetoGa::try_new(&obj, bench_settings(7, false), 32).unwrap();
            black_box(ga.try_run_traced(&[], None).unwrap().front.len())
        });
    });
    let obj = ColdMultiObjective::new(&ctx, cfg.params);
    let ga = ParetoGa::try_new(&obj, bench_settings(7, false), 32).unwrap();
    let result = ga.try_run_traced(&[], None).unwrap();
    let points: Vec<Vec<f64>> = result.front.iter().map(|p| p.objectives.clone()).collect();
    group.bench_function("hypervolume_exact", |b| {
        b.iter(|| black_box(hypervolume(&points, &result.reference)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ga_scaling,
    bench_ga_parallelism,
    bench_heuristics,
    bench_end_to_end,
    bench_pareto
);
criterion_main!(benches);
