//! Baseline topology-synthesis models (§2 of the paper, Table 1, Figs 1–2).
//!
//! COLD's evaluation compares against the classic random-graph families:
//!
//! - [`erdos_renyi`]: Erdős–Rényi `G(n, p)` and `G(n, m)`;
//! - [`waxman`]: Waxman's distance-dependent random graphs;
//! - [`plrg`]: Power-Law Random Graphs (Aiello–Chung–Lu expected-degree
//!   model, i.e. the Chung–Lu construction with power-law weights);
//! - [`dk`]: the dK-series machinery of Mahadevan et al. — dK-distribution
//!   computation, the parameter-count analysis of Fig 1, degree-sequence
//!   (1K) generation, and dK-preserving rewiring used to reproduce Fig 2's
//!   demonstration that matching the 3K-distribution of a small network
//!   can pin it down up to isomorphism;
//! - [`criteria`]: a programmatic version of Table 1 — each synthesis
//!   model is scored against the six requirements from the paper's
//!   introduction (statistical variation, constraints, meaningful
//!   parameters, tunability, generates-a-network, simplicity).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criteria;
pub mod dk;
pub mod erdos_renyi;
pub mod hot;
pub mod plrg;
pub mod waxman;

pub use criteria::{evaluate_model, CriteriaReport, Score, SynthesisModel};
pub use erdos_renyi::{gnm, gnp};
pub use hot::FkpHot;
pub use plrg::Plrg;
pub use waxman::Waxman;
