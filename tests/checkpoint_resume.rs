//! Workspace-level crash-safety journeys: a campaign killed mid-run and
//! resumed from its snapshot must reproduce the uninterrupted campaign
//! bit-for-bit (exports included), an injected trial panic must surface as
//! a `trial_failed` journal event plus a partial report rather than an
//! abort, and checkpoint writes must leave an audit trail in the journal.

use cold::report::outcome_report;
use cold::{export, run_campaign, CampaignCheckpoint, ColdConfig};
use cold_obs::{parse_journal, Event, TraceMode};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests that flip the process-global telemetry state.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cold-ckpt-{}-{name}", std::process::id()))
}

#[test]
fn interrupted_campaign_resume_is_bit_identical_end_to_end() {
    let cfg = ColdConfig::quick(8, 4e-4, 10.0);
    let ckpt = temp_file("journey.ckpt.json");
    let _ = std::fs::remove_file(&ckpt);

    // Uninterrupted reference, capturing what a CLI run would export.
    let full = run_campaign(&cfg, 21, 3, 1, &ckpt, None, None, |_, _| {}).expect("reference run");
    let reference: Vec<String> =
        full.iter().map(|r| export::to_json(&r.network, &r.context)).collect();
    let _ = std::fs::remove_file(&ckpt);

    // Crash mid-campaign: the hook dies on trial 1, after the snapshot
    // covering trials 0–1 hit the disk.
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_campaign(&cfg, 21, 3, 1, &ckpt, None, None, |i, _| {
            if i == 1 {
                panic!("simulated kill");
            }
        })
    }));
    assert!(crashed.is_err(), "first leg must die");

    // Resume from the snapshot and compare every exported artifact.
    let snapshot = CampaignCheckpoint::load(&ckpt).expect("valid snapshot on disk");
    assert!(!snapshot.records.is_empty() && snapshot.records.len() < 3, "partial snapshot");
    let resumed =
        run_campaign(&cfg, 21, 3, 1, &ckpt, Some(snapshot), None, |_, _| {}).expect("resumed run");
    assert_eq!(resumed.len(), full.len());
    for (i, (a, b)) in full.iter().zip(&resumed).enumerate() {
        assert_eq!(a.network.topology, b.network.topology, "trial {i} topology");
        assert_eq!(a.best_cost_history, b.best_cost_history, "trial {i} history");
        assert_eq!(
            reference[i],
            export::to_json(&b.network, &b.context),
            "trial {i} exported JSON differs after resume"
        );
    }
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn injected_panic_emits_trial_failed_events_and_partial_report() {
    let _guard = telemetry_lock();
    let journal = temp_file("failures.jsonl");
    cold_obs::configure(TraceMode::Journal(journal.clone())).expect("journal sink");
    let cfg = ColdConfig::quick(7, 4e-4, 10.0);
    // Trial 1 panics on both attempts; everything else is healthy.
    let outcome = cfg.ensemble_with_runner(9, 3, &|c, seed, trial, _attempt| {
        if trial == 1 {
            panic!("injected trial failure");
        }
        c.try_synthesize(seed)
    });
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    // The ensemble degrades instead of aborting: 2 of 3 trials survive.
    assert_eq!(outcome.lost_trials(), vec![1]);
    assert_eq!(outcome.results.len(), 2);

    // Both failed attempts are journaled as `trial_failed` events.
    let text = std::fs::read_to_string(&journal).expect("journal written");
    let events = parse_journal(&text).expect("journal parses");
    let mut failed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::TrialFailed(f) => Some(f),
            _ => None,
        })
        .collect();
    failed.sort_by_key(|f| f.attempt);
    assert_eq!(failed.len(), 2, "one event per failed attempt");
    assert!(failed.iter().all(|f| f.trial == 1));
    assert_eq!(failed.iter().map(|f| f.attempt).collect::<Vec<_>>(), vec![1, 2]);
    assert_ne!(failed[0].seed, failed[1].seed, "retry runs on a fresh salted seed");
    assert!(failed.iter().all(|f| f.error.contains("injected trial failure")));

    // The report renders the partial ensemble plus the failure table.
    let md = outcome_report(&cfg, &outcome, 9);
    assert!(md.contains("networks: **2**"));
    assert!(md.contains("## Trial failures"));
    assert!(md.contains("injected trial failure"));
    assert!(md.contains("| lost |"));
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn campaign_checkpoints_leave_a_journal_audit_trail() {
    let _guard = telemetry_lock();
    let journal = temp_file("audit.jsonl");
    let ckpt = temp_file("audit.ckpt.json");
    let _ = std::fs::remove_file(&ckpt);
    cold_obs::configure(TraceMode::Journal(journal.clone())).expect("journal sink");
    let cfg = ColdConfig::quick(7, 4e-4, 10.0);
    run_campaign(&cfg, 5, 3, 1, &ckpt, None, None, |_, _| {}).expect("campaign");
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    let text = std::fs::read_to_string(&journal).expect("journal written");
    let events = parse_journal(&text).expect("journal parses");
    let checkpoints: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Checkpoint(c) => Some(c),
            _ => None,
        })
        .collect();
    // every=1, count=3: snapshots after trials 1 and 2; the final trial
    // completes the campaign and is not snapshotted.
    assert_eq!(checkpoints.iter().map(|c| c.completed).collect::<Vec<_>>(), vec![1, 2]);
    assert!(checkpoints.iter().all(|c| c.total == 3));
    assert!(checkpoints.iter().all(|c| c.path.ends_with("audit.ckpt.json")));
    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&ckpt);
}
