//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the narrow slice of the
//! `rand 0.8` API it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`.
//!
//! The generator behind `StdRng` is xoshiro256++ seeded through SplitMix64
//! — a well-studied, high-quality 64-bit PRNG. Streams are **not**
//! bit-compatible with upstream `rand`'s ChaCha12-based `StdRng`, but every
//! consumer in this workspace only relies on determinism (same seed, same
//! stream), which this implementation guarantees.

/// The core of a random number generator: uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a half-open or closed range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "cannot sample empty range"
                );
                // Width of the target range as an unsigned span; `None`
                // marks the full 2^64 range (only reachable inclusively).
                let span: Option<u64> = if inclusive {
                    let s = (high as u64).wrapping_sub(low as u64);
                    s.checked_add(1)
                } else {
                    Some((high as u64).wrapping_sub(low as u64))
                };
                let offset = match span {
                    None => rng.next_u64(),
                    Some(s) => {
                        // Rejection sampling kills modulo bias.
                        let zone = u64::MAX - (u64::MAX % s + 1) % s;
                        loop {
                            let v = rng.next_u64();
                            if v <= zone {
                                break v % s;
                            }
                        }
                    }
                };
                (low as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "cannot sample empty range"
                );
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + (high as f64 - low as f64) * unit;
                // Guard against rounding up to the open bound.
                let v = if !inclusive && v as $t >= high { low } else { v as $t };
                v.clamp(low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Marker for the `Standard` distribution used by [`Rng::gen`].
pub struct Standard;

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from `range` (`low..high` or `low..=high`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        <Standard as Distribution<f64>>::sample(&Standard, self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand`'s ChaCha12 `StdRng`, but
    /// deterministic, fast, and statistically strong, which is all the
    /// workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// Returns the raw xoshiro256++ state, for checkpointing a stream
        /// mid-sequence. Restoring via [`StdRng::from_state`] continues the
        /// stream exactly where it left off.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from a previously captured
        /// [`state`](StdRng::state). The all-zero state is invalid for
        /// xoshiro and is remapped the same way [`SeedableRng::from_seed`]
        /// does, so a round-tripped state never degenerates.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                let mut seed = <Self as SeedableRng>::Seed::default();
                seed.as_mut().fill(0);
                return <Self as SeedableRng>::from_seed(seed);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = r.gen_range(0..7);
            assert!(x < 7);
            let y = r.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn full_u64_range_inclusive_does_not_panic() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u64 = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            let _ = a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_remapped_not_degenerate() {
        let mut r = StdRng::from_state([0, 0, 0, 0]);
        let (x, y) = (r.next_u64(), r.next_u64());
        assert!(x != 0 || y != 0, "all-zero xoshiro state must be remapped");
    }

    use super::RngCore;
}
