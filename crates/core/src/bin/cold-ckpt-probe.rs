//! `cold-ckpt-probe` — cross-process checkpoint portability probe.
//!
//! ```sh
//! cold-ckpt-probe inspect campaign.ckpt.json
//! cold-ckpt-probe resume-ga input.json      # {"config", "seed", "snapshot"}
//! cold-ckpt-probe resume-campaign campaign.ckpt.json
//! ```
//!
//! Checkpoints claim to be portable: a `GaCheckpoint` or
//! `CampaignCheckpoint` written by one process must resume bit-identically
//! in another. This tool is the *other* process — the portability tests
//! hand it snapshots produced in-process and require its stdout to match
//! the uninterrupted in-process reference exactly. Output is one JSON
//! document of deterministic fields only (edges, cost histories, final
//! population costs — never wall-clock stats).

use cold::context::rng::derive_seed;
use cold::{run_campaign_controlled, CampaignCheckpoint, CampaignControl, ColdConfig};
use serde::Deserialize as _;
use serde_json::Value;
use std::path::PathBuf;

const USAGE: &str = "cold-ckpt-probe — cross-process checkpoint portability probe

USAGE:
    cold-ckpt-probe inspect <ckpt.json>         summarize a checkpoint file
    cold-ckpt-probe resume-ga <input.json>      resume a GA snapshot to completion;
                                                input: {\"config\", \"seed\", \"snapshot\"}
    cold-ckpt-probe resume-campaign <ckpt.json> resume a campaign checkpoint to completion
";

fn fail(msg: &str) -> ! {
    eprintln!("cold-ckpt-probe: {msg}");
    std::process::exit(1);
}

fn read_file(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())))
}

/// The deterministic slice of one synthesis result — the unit of
/// bit-identity the portability tests compare.
fn trial_value(trial: usize, seed: u64, r: &cold::SynthesisResult) -> Value {
    let edges: Vec<Value> =
        r.network.topology.edges().map(|(a, b)| serde_json::json!([a, b])).collect();
    serde_json::json!({
        "trial": trial,
        "seed": seed,
        "edges": edges,
        "best_cost_history": r.best_cost_history,
        "final_population_costs": r.final_population_costs,
    })
}

fn inspect(path: &PathBuf) {
    let text = read_file(path);
    let doc: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("{}: not JSON: {e}", path.display())));
    let kind = doc["kind"].as_str().unwrap_or("unknown");
    let summary = match kind {
        "cold-campaign-checkpoint" => {
            let ckpt = CampaignCheckpoint::from_json(&text)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
            serde_json::json!({
                "kind": kind,
                "master_seed": ckpt.master_seed,
                "count": ckpt.count,
                "completed": ckpt.records.len(),
            })
        }
        _ => match cold::ga::GaCheckpoint::from_value(&doc) {
            Ok(ga) => serde_json::json!({
                "kind": "cold-ga-checkpoint",
                "generation": ga.generation,
                "population": ga.population.len(),
            }),
            Err(e) => fail(&format!("{}: unrecognized checkpoint: {e}", path.display())),
        },
    };
    println!("{}", serde_json::to_string(&summary).expect("summary serializes"));
}

fn resume_ga(path: &PathBuf) {
    let doc: Value = serde_json::from_str(&read_file(path))
        .unwrap_or_else(|e| fail(&format!("{}: not JSON: {e}", path.display())));
    let config = ColdConfig::from_json_value(&doc["config"])
        .unwrap_or_else(|| fail("input `config` is not a valid ColdConfig"));
    let seed = doc["seed"].as_u64().unwrap_or_else(|| fail("input `seed` missing"));
    let resume = if doc["snapshot"].is_null() {
        None
    } else {
        Some(
            cold::ga::GaCheckpoint::from_value(&doc["snapshot"])
                .unwrap_or_else(|e| fail(&format!("input `snapshot`: {e}"))),
        )
    };
    let result = config
        .try_synthesize_resumable(seed, None, None, resume)
        .unwrap_or_else(|e| fail(&format!("resume failed: {e}")));
    println!(
        "{}",
        serde_json::to_string(&trial_value(0, seed, &result)).expect("trial serializes")
    );
}

fn resume_campaign(path: &PathBuf) {
    let ckpt = CampaignCheckpoint::from_json(&read_file(path))
        .unwrap_or_else(|e| fail(&format!("{}: {e}", path.display())));
    let config = ckpt.config;
    let (master_seed, count) = (ckpt.master_seed, ckpt.count);
    // The resumed leg's own snapshots go next to the input, never over it.
    let scratch = path.with_extension("resume.ckpt.json");
    let results = run_campaign_controlled(
        &config,
        master_seed,
        count,
        count.max(1),
        &scratch,
        Some(ckpt),
        None,
        CampaignControl::default(),
        |_, _| {},
    )
    .unwrap_or_else(|e| fail(&format!("campaign resume failed: {e}")));
    let _ = std::fs::remove_file(&scratch);
    let trials: Vec<Value> = results
        .iter()
        .enumerate()
        .map(|(i, r)| trial_value(i, derive_seed(master_seed, i as u64), r))
        .collect();
    println!(
        "{}",
        serde_json::to_string(&serde_json::json!({ "trials": trials })).expect("trials serialize")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] => {
            let path = PathBuf::from(path);
            match cmd.as_str() {
                "inspect" => inspect(&path),
                "resume-ga" => resume_ga(&path),
                "resume-campaign" => resume_campaign(&path),
                other => fail(&format!("unknown subcommand `{other}`\n\n{USAGE}")),
            }
        }
        [flag] if flag == "--help" || flag == "-h" => println!("{USAGE}"),
        _ => fail(&format!("expected a subcommand and a path\n\n{USAGE}")),
    }
}
