//! The full random context: PoP locations, populations, traffic (§3.1).

use crate::gravity::GravityModel;
use crate::points::{PointProcess, PointProcessKind};
use crate::population::{PopulationKind, PopulationModel};
use crate::region::{distance_matrix, Point, Region};
use crate::rng::rng_for;
use crate::traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Configuration of the context model — everything random about a COLD
/// synthesis lives here (§3.1: "the context consists of the spatial
/// locations of the nodes or PoPs; and the traffic matrix").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContextConfig {
    /// Number of PoPs.
    pub n: usize,
    /// Region on which PoPs are placed (unit area).
    pub region: Region,
    /// Length scale: sampled coordinates are multiplied by this factor, so
    /// the region spans `scale` distance units per side. The scale fixes
    /// the unit system in which `k1 = 1` is meaningful — see
    /// [`PAPER_REGION_SCALE`].
    pub scale: f64,
    /// PoP location process.
    pub points: PointProcessKind,
    /// PoP population distribution.
    pub population: PopulationKind,
    /// Gravity model settings.
    pub gravity: GravityModel,
}

/// The calibrated region side length for the paper's parameter axes.
///
/// Costs are relative, so the unit of distance is a free calibration
/// constant the paper never states. `30` (think "one unit ≈ tens of km on
/// a continental map") is the scale at which, with `k0 = 10` and `k1 = 1`,
/// link-existence and link-length costs have the comparable influence §6
/// describes, and the published `k2`/`k3` axes hit the tree → mesh and
/// tree → star transitions where Figs 5–9 show them. DESIGN.md §5 derives
/// the value.
pub const PAPER_REGION_SCALE: f64 = 30.0;

impl ContextConfig {
    /// The paper's default model: `n` uniform PoPs on the (scaled) unit
    /// square, Exp(30) populations, mean-normalized gravity traffic.
    pub fn paper_default(n: usize) -> Self {
        Self {
            n,
            region: Region::UnitSquare,
            scale: PAPER_REGION_SCALE,
            points: PointProcessKind::Uniform,
            population: PopulationKind::default(),
            gravity: GravityModel::paper_default(),
        }
    }

    /// Checks the configuration for internal consistency.
    ///
    /// This is the typed-error face of the `assert!`s that used to live in
    /// [`generate`](Self::generate): the synthesizer calls it up front so
    /// a bad config surfaces as a recordable error before any work starts.
    ///
    /// # Errors
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err(format!("need at least 2 PoPs, got {}", self.n));
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(format!("scale must be positive and finite, got {}", self.scale));
        }
        self.population.validate().map_err(|why| format!("population model: {why}"))
    }

    /// Generates the context for a given seed. Pure: the same
    /// `(config, seed)` always produces the same context.
    ///
    /// # Panics
    /// Panics when the configuration is invalid — use
    /// [`validate`](Self::validate) first for a recoverable check.
    pub fn generate(&self, seed: u64) -> Context {
        // Separate sub-streams so changing the population model does not
        // perturb the sampled locations (and vice versa).
        if let Err(why) = self.validate() {
            panic!("invalid context config: {why}");
        }
        let mut pos_rng = rng_for(seed, 0x706F73 /* "pos" */);
        let mut pop_rng = rng_for(seed, 0x706F70 /* "pop" */);
        let positions: Vec<Point> = self
            .points
            .sample(self.n, &self.region, &mut pos_rng)
            .into_iter()
            .map(|p| Point::new(p.x * self.scale, p.y * self.scale))
            .collect();
        let populations = self.population.sample(self.n, &mut pop_rng);
        let traffic = self.gravity.traffic_matrix(&populations, Some(&positions));
        Context::new(positions, populations, traffic)
    }

    /// Generates an ensemble of `count` contexts with per-trial seeds
    /// derived from `master_seed`.
    pub fn ensemble(&self, master_seed: u64, count: usize) -> Vec<Context> {
        (0..count).map(|i| self.generate(crate::rng::derive_seed(master_seed, i as u64))).collect()
    }
}

/// A concrete synthesis context: the fixed input to the (deterministic)
/// optimization stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Context {
    /// PoP coordinates.
    pub positions: Vec<Point>,
    /// PoP populations (drive the gravity model; also used by router-level
    /// expansion to size PoPs).
    pub populations: Vec<f64>,
    /// Offered traffic between each ordered pair of PoPs.
    pub traffic: TrafficMatrix,
    /// Precomputed Euclidean distances between PoPs.
    distances: Vec<Vec<f64>>,
}

impl Context {
    /// Assembles a context from parts, precomputing distances.
    ///
    /// # Panics
    /// Panics when the parts disagree on the PoP count.
    pub fn new(positions: Vec<Point>, populations: Vec<f64>, traffic: TrafficMatrix) -> Self {
        assert_eq!(positions.len(), populations.len(), "positions vs populations");
        assert_eq!(positions.len(), traffic.n(), "positions vs traffic");
        let distances = distance_matrix(&positions);
        Self { positions, populations, traffic, distances }
    }

    /// Builds a context around explicit PoP locations (e.g. real city
    /// coordinates) with generated populations/traffic.
    pub fn from_positions(
        positions: Vec<Point>,
        population: PopulationKind,
        gravity: GravityModel,
        seed: u64,
    ) -> Self {
        let mut rng = rng_for(seed, 0x706F70);
        let populations = population.sample(positions.len(), &mut rng);
        let traffic = gravity.traffic_matrix(&populations, Some(&positions));
        Self::new(positions, populations, traffic)
    }

    /// Number of PoPs.
    #[inline]
    pub fn n(&self) -> usize {
        self.positions.len()
    }

    /// Euclidean distance between PoPs `u` and `v`.
    #[inline]
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        self.distances[u][v]
    }

    /// A copyable distance closure for graph algorithms.
    pub fn distance_fn(&self) -> impl Fn(usize, usize) -> f64 + Copy + '_ {
        move |u, v| self.distances[u][v]
    }

    /// A copyable traffic closure for routing.
    pub fn traffic_fn(&self) -> impl Fn(usize, usize) -> f64 + Copy + '_ {
        self.traffic.as_fn()
    }

    /// The `k` geographically nearest other PoPs of every PoP, each list
    /// sorted by `(distance, id)` ascending, so the result is a pure
    /// function of the positions (ties cannot reorder under equal
    /// coordinates). With `k >= n - 1` every list is simply all other
    /// PoPs by distance.
    ///
    /// This is the candidate-edge universe for pruned mutation at large
    /// `n`: long-haul links the optimizer would never keep are excluded
    /// up front, which bounds the per-offspring dirty set for
    /// delta-evaluation.
    pub fn k_nearest(&self, k: usize) -> Vec<Vec<usize>> {
        let n = self.n();
        (0..n)
            .map(|u| {
                let mut others: Vec<usize> = (0..n).filter(|&v| v != u).collect();
                others.sort_by(|&a, &b| {
                    self.distances[u][a].total_cmp(&self.distances[u][b]).then(a.cmp(&b))
                });
                others.truncate(k);
                others
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_reproducible() {
        let cfg = ContextConfig::paper_default(12);
        let a = cfg.generate(99);
        let b = cfg.generate(99);
        assert_eq!(a, b);
        let c = cfg.generate(100);
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_are_consistent() {
        let ctx = ContextConfig::paper_default(8).generate(1);
        assert_eq!(ctx.n(), 8);
        assert_eq!(ctx.populations.len(), 8);
        assert_eq!(ctx.traffic.n(), 8);
        assert_eq!(ctx.distance(3, 3), 0.0);
        assert!((ctx.distance(0, 1) - ctx.positions[0].distance(&ctx.positions[1])).abs() < 1e-15);
    }

    #[test]
    fn traffic_follows_gravity() {
        let ctx = ContextConfig::paper_default(5).generate(7);
        let mean = ctx.populations.iter().sum::<f64>() / 5.0;
        let t01 = ctx.traffic.demand(0, 1);
        let expected =
            crate::gravity::PAPER_PER_CAPITA_DEMAND * ctx.populations[0] * ctx.populations[1]
                / mean;
        assert!((t01 - expected).abs() < 1e-9 * t01.max(1.0));
    }

    #[test]
    fn scale_stretches_positions() {
        let base = ContextConfig::paper_default(10);
        let unit = ContextConfig { scale: 1.0, ..base };
        let a = base.generate(3);
        let b = unit.generate(3);
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            assert!((pa.x - pb.x * PAPER_REGION_SCALE).abs() < 1e-12);
            assert!((pa.y - pb.y * PAPER_REGION_SCALE).abs() < 1e-12);
        }
        // Distances scale linearly.
        assert!((a.distance(0, 1) - PAPER_REGION_SCALE * b.distance(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn ensemble_members_differ() {
        let contexts = ContextConfig::paper_default(6).ensemble(42, 5);
        assert_eq!(contexts.len(), 5);
        for i in 0..contexts.len() {
            for j in (i + 1)..contexts.len() {
                assert_ne!(contexts[i], contexts[j], "trials {i} and {j} identical");
            }
        }
    }

    #[test]
    fn population_change_does_not_move_pops() {
        // Sub-stream separation: altering the population model must leave
        // sampled locations untouched.
        let base = ContextConfig::paper_default(10);
        let heavy = ContextConfig { population: PopulationKind::pareto_1_5(), ..base };
        let a = base.generate(5);
        let b = heavy.generate(5);
        assert_eq!(a.positions, b.positions);
        assert_ne!(a.populations, b.populations);
    }

    #[test]
    fn validate_screens_bad_configs() {
        let good = ContextConfig::paper_default(8);
        assert!(good.validate().is_ok());
        assert!(ContextConfig { n: 1, ..good }.validate().is_err());
        assert!(ContextConfig { scale: 0.0, ..good }.validate().is_err());
        assert!(ContextConfig { scale: f64::NAN, ..good }.validate().is_err());
        let bad_pop = ContextConfig { population: PopulationKind::Constant { value: 0.0 }, ..good };
        assert!(bad_pop.validate().is_err());
    }

    #[test]
    fn k_nearest_sorts_by_distance_then_id_and_truncates() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 1.0), // ties with 1 at distance 1 from 0
        ];
        let ctx = Context::from_positions(
            pts,
            PopulationKind::Constant { value: 1.0 },
            GravityModel::raw(),
            1,
        );
        let nn = ctx.k_nearest(2);
        assert_eq!(nn.len(), 4);
        assert_eq!(nn[0], vec![1, 3], "equal distances break ties by id");
        assert_eq!(nn[2], vec![1, 0]);
        // k >= n-1 yields everyone, sorted.
        assert_eq!(ctx.k_nearest(10)[0], vec![1, 3, 2]);
        assert_eq!(ctx.k_nearest(0)[1], Vec::<usize>::new());
    }

    #[test]
    fn from_positions_uses_given_coordinates() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
        let ctx = Context::from_positions(
            pts.clone(),
            PopulationKind::Constant { value: 2.0 },
            GravityModel::raw(),
            3,
        );
        assert_eq!(ctx.positions, pts);
        assert_eq!(ctx.traffic.demand(0, 1), 4.0);
    }
}
