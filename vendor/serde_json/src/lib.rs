//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Works against the vendored `serde`'s [`Value`] tree: [`to_string`] /
//! [`to_string_pretty`] print any [`serde::Serialize`] type as JSON text,
//! [`from_str`] parses JSON text back into any [`serde::Deserialize`]
//! type (typically [`Value`] itself), and [`json!`] builds values inline.

pub use serde::{Map, Number, Value};

mod parse;
mod print;

pub use parse::from_str;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
/// Kept for API compatibility; serialization of a [`Value`] tree cannot
/// fail (non-finite floats become `null` at [`to_value`] time).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&to_value(value)))
}

/// Serializes `value` as pretty-printed JSON text (2-space indent).
///
/// # Errors
/// Kept for API compatibility; see [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&to_value(value)))
}

/// Error type for JSON parsing (and, vestigially, serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Builds a [`Value`] inline.
///
/// Supports the subset of the upstream macro this workspace uses: object
/// literals with string-literal keys (values may themselves be nested
/// object/array literals), array literals, `null`, `true`/`false`, and
/// arbitrary serializable expressions (taken by reference, not moved).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]: a tt-muncher in the style of the
/// upstream macro, reduced to string-literal object keys.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////// entry points ////////
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut __object = $crate::Map::new();
        $crate::json_internal!(@object __object ($($tt)+));
        $crate::Value::Object(__object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };

    //////// array muncher: accumulates finished elements in [..] ////////
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    // Separator (and trailing) commas between elements.
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };
    // Special-form elements must be matched before the expr arms.
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [ $($nested:tt)* ] $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!([ $($nested)* ]),] $($rest)*
        )
    };
    (@array [$($elems:expr,)*] { $($nested:tt)* } $($rest:tt)*) => {
        $crate::json_internal!(
            @array [$($elems,)* $crate::json_internal!({ $($nested)* }),] $($rest)*
        )
    };
    // A plain expression element: `expr, rest` or a final `expr`.
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        ::std::vec![$($elems,)* $crate::to_value(&$last),]
    };

    //////// object muncher: inserts `"key": value` pairs in order ////////
    (@object $object:ident ()) => {};
    // Separator (and trailing) commas between entries.
    (@object $object:ident (, $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($rest)*));
    };
    // Special-form values must be matched before the expr arms.
    (@object $object:ident ($key:literal : null $($rest:tt)*)) => {
        $object.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal!(@object $object ($($rest)*));
    };
    (@object $object:ident ($key:literal : true $($rest:tt)*)) => {
        $object.insert(::std::string::String::from($key), $crate::Value::Bool(true));
        $crate::json_internal!(@object $object ($($rest)*));
    };
    (@object $object:ident ($key:literal : false $($rest:tt)*)) => {
        $object.insert(::std::string::String::from($key), $crate::Value::Bool(false));
        $crate::json_internal!(@object $object ($($rest)*));
    };
    (@object $object:ident ($key:literal : [ $($nested:tt)* ] $($rest:tt)*)) => {
        $object.insert(
            ::std::string::String::from($key),
            $crate::json_internal!([ $($nested)* ]),
        );
        $crate::json_internal!(@object $object ($($rest)*));
    };
    (@object $object:ident ($key:literal : { $($nested:tt)* } $($rest:tt)*)) => {
        $object.insert(
            ::std::string::String::from($key),
            $crate::json_internal!({ $($nested)* }),
        );
        $crate::json_internal!(@object $object ($($rest)*));
    };
    // A plain expression value: `"key": expr, rest` or a final one.
    (@object $object:ident ($key:literal : $value:expr , $($rest:tt)*)) => {
        $object.insert(::std::string::String::from($key), $crate::to_value(&$value));
        $crate::json_internal!(@object $object ($($rest)*));
    };
    (@object $object:ident ($key:literal : $value:expr)) => {
        $object.insert(::std::string::String::from($key), $crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let xs = vec![1u64, 2, 3];
        let v = json!({
            "name": "cold",
            "n": 3usize,
            "xs": xs,
            "rows": xs.iter().map(|&x| json!({"x": x, "sq": x * x})).collect::<Vec<_>>(),
            "none": json!(null),
            "inline": {"a": 1u64, "flag": true, "deep": {"b": [1u64, null]}},
        });
        assert_eq!(v["name"], "cold");
        assert_eq!(v["n"], 3usize);
        assert_eq!(v["xs"].as_array().unwrap().len(), 3);
        assert_eq!(v["rows"][2]["sq"].as_u64(), Some(9));
        assert!(v["none"].is_null());
        assert_eq!(v["inline"]["a"], 1u64);
        assert_eq!(v["inline"]["flag"], true);
        assert_eq!(v["inline"]["deep"]["b"][0], 1u64);
        assert!(v["inline"]["deep"]["b"][1].is_null());
        // `xs` was borrowed, not moved.
        assert_eq!(xs.len(), 3);
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "a": 1usize,
            "b": [1.5f64, -2.0f64],
            "c": {"nested": true},
            "s": "quote \" backslash \\ newline \n done",
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).expect("parses");
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": [1u64]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn numbers_classify_on_parse() {
        let v: Value = from_str("[5, -5, 5.5, 1e3]").unwrap();
        assert_eq!(v[0].as_u64(), Some(5));
        assert_eq!(v[1].as_i64(), Some(-5));
        assert_eq!(v[1].as_u64(), None);
        assert_eq!(v[2].as_f64(), Some(5.5));
        assert_eq!(v[3].as_f64(), Some(1000.0));
    }
}
