//! Simulated annealing — the classic alternative heuristic the paper's GA
//! is implicitly weighed against (§3.3 motivates "the choice of a GA over
//! the alternative heuristics" by flexibility, competitiveness and the
//! population output; SA is the canonical member of that alternative
//! class).
//!
//! Having a faithful SA lets users reproduce that engineering judgment:
//! SA is single-solution (no final population, no free multi-network
//! output) and needs a cooling schedule tuned per cost regime, but it can
//! be competitive per evaluation. The move set mirrors the GA's mutations
//! (link toggle / leaf-ification) with the same MST connectivity repair,
//! so any quality gap is attributable to the search strategy itself.

use cold_graph::mst::{join_components, mst_matrix};
use cold_graph::AdjacencyMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The objective interface (duplicated trait bound from `cold-ga` would
/// create an unwanted dependency direction; SA only needs these three
/// functions, supplied as closures through [`AnnealingProblem`]).
pub trait AnnealingProblem {
    /// Node count.
    fn n(&self) -> usize;
    /// Physical distance (repair and leaf reattachment).
    fn distance(&self, u: usize, v: usize) -> f64;
    /// Cost of a connected topology.
    fn cost(&self, topology: &AdjacencyMatrix) -> f64;
}

/// Anything implementing the GA-facing objective can anneal too (same
/// method set), via this blanket adapter around a reference.
impl<T> AnnealingProblem for &T
where
    T: AnnealingProblem + ?Sized,
{
    fn n(&self) -> usize {
        (**self).n()
    }
    fn distance(&self, u: usize, v: usize) -> f64 {
        (**self).distance(u, v)
    }
    fn cost(&self, topology: &AdjacencyMatrix) -> f64 {
        (**self).cost(topology)
    }
}

/// SA settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealingSettings {
    /// Total proposal steps (comparable to GA evaluations).
    pub steps: usize,
    /// Initial temperature as a *fraction of the initial cost* — scale-free
    /// so the same settings work across cost regimes.
    pub initial_temp_fraction: f64,
    /// Geometric cooling factor applied every step (e.g. `0.999`).
    pub cooling: f64,
    /// Probability a proposal is a node (leaf-ification) move rather than
    /// a link toggle.
    pub node_move_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingSettings {
    fn default() -> Self {
        Self {
            steps: 8_000,
            initial_temp_fraction: 0.05,
            cooling: 0.9995,
            node_move_prob: 0.2,
            seed: 0,
        }
    }
}

impl AnnealingSettings {
    /// Validates the schedule.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps == 0 {
            return Err("steps must be positive".into());
        }
        if !(0.0 < self.cooling && self.cooling < 1.0) {
            return Err(format!("cooling {} must be in (0, 1)", self.cooling));
        }
        if self.initial_temp_fraction <= 0.0 {
            return Err("initial temperature fraction must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.node_move_prob) {
            return Err("node_move_prob must be in [0, 1]".into());
        }
        Ok(())
    }
}

/// SA outcome.
#[derive(Debug, Clone)]
pub struct AnnealingResult {
    /// Best topology visited.
    pub best: AdjacencyMatrix,
    /// Its cost.
    pub best_cost: f64,
    /// Proposals accepted.
    pub accepted: usize,
    /// Total objective evaluations.
    pub evaluations: usize,
}

/// One proposal: toggle a random pair, or leaf-ify a random non-leaf node
/// (the GA's node mutation), then repair connectivity.
fn propose<P: AnnealingProblem>(
    state: &AdjacencyMatrix,
    problem: &P,
    settings: &AnnealingSettings,
    rng: &mut StdRng,
) -> AdjacencyMatrix {
    let mut next = state.clone();
    let n = next.n();
    if rng.gen_range(0.0..1.0) < settings.node_move_prob && n >= 3 {
        let degrees = next.degrees();
        let hubs: Vec<usize> = (0..n).filter(|&v| degrees[v] > 1).collect();
        if !hubs.is_empty() {
            let victim = hubs[rng.gen_range(0..hubs.len())];
            for u in 0..n {
                if u != victim && next.has_edge(u, victim) {
                    next.set_edge(u, victim, false);
                }
            }
            let target = (0..n)
                .filter(|&u| u != victim)
                .min_by(|&a, &b| {
                    problem.distance(victim, a).total_cmp(&problem.distance(victim, b))
                })
                .expect("n >= 3");
            next.set_edge(victim, target, true);
        }
    } else if next.pair_count() > 0 {
        let p = rng.gen_range(0..next.pair_count());
        let (u, v) = next.index_pair(p);
        next.toggle_edge(u, v);
    }
    join_components(&mut next, |u, v| problem.distance(u, v));
    next
}

/// Runs simulated annealing from the MST (the same anchor the GA seeds
/// with), optionally warm-started from a provided topology.
pub fn anneal<P: AnnealingProblem>(
    problem: &P,
    settings: &AnnealingSettings,
    start: Option<AdjacencyMatrix>,
) -> AnnealingResult {
    settings.validate().expect("invalid annealing settings");
    let n = problem.n();
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut state = start.unwrap_or_else(|| mst_matrix(n, |u, v| problem.distance(u, v)));
    join_components(&mut state, |u, v| problem.distance(u, v));
    let mut state_cost = problem.cost(&state);
    let mut best = state.clone();
    let mut best_cost = state_cost;
    let mut temp = (state_cost.abs().max(1e-9)) * settings.initial_temp_fraction;
    let mut accepted = 0usize;
    let mut evaluations = 1usize;
    for _ in 0..settings.steps {
        let candidate = propose(&state, problem, settings, &mut rng);
        let cand_cost = problem.cost(&candidate);
        evaluations += 1;
        let delta = cand_cost - state_cost;
        let accept =
            delta <= 0.0 || (temp > 0.0 && rng.gen_range(0.0..1.0) < (-delta / temp).exp());
        if accept {
            state = candidate;
            state_cost = cand_cost;
            accepted += 1;
            if state_cost < best_cost {
                best = state.clone();
                best_cost = state_cost;
            }
        }
        temp *= settings.cooling;
    }
    AnnealingResult { best, best_cost, accepted, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_context::ContextConfig;
    use cold_cost::{CostEvaluator, CostParams};

    /// Adapter: a CostEvaluator as an annealing problem.
    struct Problem<'a>(CostEvaluator<'a>);
    impl AnnealingProblem for Problem<'_> {
        fn n(&self) -> usize {
            self.0.ctx.n()
        }
        fn distance(&self, u: usize, v: usize) -> f64 {
            self.0.ctx.distance(u, v)
        }
        fn cost(&self, t: &AdjacencyMatrix) -> f64 {
            self.0.cost(t).expect("connected")
        }
    }

    fn problem(ctx: &cold_context::Context, k2: f64, k3: f64) -> Problem<'_> {
        Problem(CostEvaluator::new(ctx, CostParams::paper(k2, k3)))
    }

    #[test]
    fn annealing_output_is_connected_and_improves_on_start() {
        let ctx = ContextConfig::paper_default(10).generate(1);
        let p = problem(&ctx, 4e-4, 10.0);
        let settings = AnnealingSettings { steps: 1500, seed: 1, ..Default::default() };
        let start = cold_graph::mst::mst_matrix(10, ctx.distance_fn());
        let start_cost = p.cost(&start);
        let r = anneal(&p, &settings, Some(start));
        assert!(cold_graph::components::matrix_is_connected(&r.best));
        assert!(r.best_cost <= start_cost + 1e-9);
        assert!(r.accepted > 0);
        assert_eq!(r.evaluations, 1501);
    }

    #[test]
    fn deterministic_given_seed() {
        let ctx = ContextConfig::paper_default(8).generate(2);
        let p = problem(&ctx, 1e-4, 0.0);
        let s = AnnealingSettings { steps: 800, seed: 9, ..Default::default() };
        let a = anneal(&p, &s, None);
        let b = anneal(&p, &s, None);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_cost, b.best_cost);
    }

    #[test]
    fn finds_tree_optimum_when_buildout_dominates() {
        // With k0/k1 dominant the MST start is already optimal; SA must
        // not wander away from it.
        let ctx = ContextConfig::paper_default(7).generate(3);
        let p = Problem(CostEvaluator::new(&ctx, CostParams::new(100.0, 10.0, 0.0, 0.0)));
        let s = AnnealingSettings { steps: 1200, seed: 4, ..Default::default() };
        let r = anneal(&p, &s, None);
        let mst_cost = p.cost(&cold_graph::mst::mst_matrix(7, ctx.distance_fn()));
        assert!((r.best_cost - mst_cost).abs() < 1e-9, "SA {} vs MST {}", r.best_cost, mst_cost);
    }

    #[test]
    fn reduces_hub_count_under_extreme_k3_and_keeps_a_star() {
        // Like the paper's GA (§5, Fig 3 right), single-solution local
        // search struggles to *reach* the star under a huge hub cost — the
        // orphaned leaves of a dismantled hub get repaired onto new hubs.
        // The realistic claims: SA makes clear progress from the MST, and
        // warm-started at the optimum it never leaves it.
        let ctx = ContextConfig::paper_default(8).generate(4);
        let p = Problem(CostEvaluator::new(&ctx, CostParams::new(0.01, 0.01, 0.0, 1e6)));
        let s =
            AnnealingSettings { steps: 4000, node_move_prob: 0.5, seed: 5, ..Default::default() };
        let start = cold_graph::mst::mst_matrix(8, ctx.distance_fn());
        let start_hubs = start.degrees().iter().filter(|&&d| d > 1).count();
        let r = anneal(&p, &s, Some(start));
        let hubs = r.best.degrees().iter().filter(|&&d| d > 1).count();
        assert!(hubs < start_hubs, "SA must shed hubs: {start_hubs} -> {hubs}");
        // Warm start at the star: no move improves, so SA must return it.
        let star =
            AdjacencyMatrix::from_edges(8, &(1..8).map(|v| (0, v)).collect::<Vec<_>>()).unwrap();
        let star_cost = p.cost(&star);
        let warm = anneal(&p, &s, Some(star));
        assert!((warm.best_cost - star_cost).abs() < 1e-9);
        let warm_hubs = warm.best.degrees().iter().filter(|&&d| d > 1).count();
        assert_eq!(warm_hubs, 1);
    }

    #[test]
    fn settings_validation() {
        let mut s = AnnealingSettings::default();
        assert!(s.validate().is_ok());
        s.cooling = 1.5;
        assert!(s.validate().is_err());
        s.cooling = 0.99;
        s.steps = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn comparable_to_brute_force_on_tiny_instance() {
        let ctx = ContextConfig::paper_default(5).generate(6);
        let eval = CostEvaluator::new(&ctx, CostParams::paper(4e-4, 10.0));
        let opt = crate::brute_force::brute_force_optimum(&eval);
        let p = Problem(CostEvaluator::new(&ctx, CostParams::paper(4e-4, 10.0)));
        let s = AnnealingSettings { steps: 5000, seed: 7, ..Default::default() };
        let r = anneal(&p, &s, None);
        assert!(
            r.best_cost <= opt.cost * 1.10 + 1e-9,
            "SA ({}) more than 10% above the optimum ({})",
            r.best_cost,
            opt.cost
        );
    }
}
