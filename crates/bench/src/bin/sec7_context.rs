//! Regenerates the §7 context-sensitivity study.
fn main() {
    let opts = cold_bench::ExpOptions::from_args();
    let doc = cold_bench::experiments::sec7::run(&opts);
    opts.write_json("sec7_context", &doc);
}
