//! k-core decomposition.
//!
//! The k-core view separates a network's backbone from its fringe: the
//! k-core is the maximal subgraph in which every node has degree ≥ k
//! within the subgraph. For PoP-level networks the 2-core is exactly the
//! meshy backbone left after iteratively stripping leaf PoPs, so core
//! sizes quantify the hub-and-spoke ↔ mesh axis the COLD cost parameters
//! tune (complementing CVND and hub counts in §6–§7).

use crate::graph::Graph;

/// Core number of every node (the largest `k` such that the node belongs
/// to the k-core), via the standard peeling algorithm in O(n + m) with a
/// bucket queue.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut degree = g.degrees();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0usize; n];
    for v in 0..n {
        pos[v] = bins[degree[v]];
        order[pos[v]] = v;
        bins[degree[v]] += 1;
    }
    // Restore bin starts.
    for d in (1..bins.len()).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;
    let mut core = degree.clone();
    for i in 0..n {
        let v = order[i];
        core[v] = degree[v];
        for &u in g.neighbors(v) {
            if degree[u] > degree[v] {
                // Move u one bucket down.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order[pu] = w;
                    order[pw] = u;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    core
}

/// The graph's degeneracy: the maximum core number.
pub fn degeneracy(g: &Graph) -> usize {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Number of nodes in the k-core.
pub fn k_core_size(g: &Graph, k: usize) -> usize {
    core_numbers(g).into_iter().filter(|&c| c >= k).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_one_degenerate() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
        assert_eq!(degeneracy(&g), 1);
        assert_eq!(k_core_size(&g, 1), 6);
        assert_eq!(k_core_size(&g, 2), 0);
    }

    #[test]
    fn clique_core_numbers() {
        let g = crate::AdjacencyMatrix::complete(5).to_graph();
        assert_eq!(core_numbers(&g), vec![4; 5]);
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn triangle_with_tails() {
        // Triangle 0-1-2, tails 2-3-4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        let core = core_numbers(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
        assert_eq!(k_core_size(&g, 2), 3);
    }

    #[test]
    fn ring_with_spokes_has_two_core_ring() {
        // 4-ring core {0..3} with one spoke each.
        let g =
            Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 5), (2, 6), (3, 7)])
                .unwrap();
        let core = core_numbers(&g);
        assert_eq!(&core[..4], &[2, 2, 2, 2]);
        assert_eq!(&core[4..], &[1, 1, 1, 1]);
    }

    #[test]
    fn matches_brute_force_peeling() {
        // Cross-check against a simple iterative peel.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 6),
                (1, 4),
            ],
        )
        .unwrap();
        let fast = core_numbers(&g);
        // Brute force: for each k, repeatedly strip nodes with degree < k.
        let n = g.n();
        let mut slow = vec![0usize; n];
        for k in 1..n {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n {
                    if alive[v] {
                        let d = g.neighbors(v).iter().filter(|&&u| alive[u]).count();
                        if d < k {
                            alive[v] = false;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    slow[v] = k;
                }
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn empty_and_isolated() {
        assert!(core_numbers(&Graph::from_edges(0, &[]).unwrap()).is_empty());
        let g = Graph::from_edges(3, &[]).unwrap();
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        assert_eq!(degeneracy(&g), 0);
    }
}
