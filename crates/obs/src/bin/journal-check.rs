//! `journal-check` — validates a COLD JSONL run journal.
//!
//! ```sh
//! journal-check run.jsonl            # schema-validate every line
//! journal-check --expect-runs 3 run.jsonl
//! journal-check --min-checkpoints 1 --max-failures 0 run.jsonl
//! ```
//!
//! Exits 0 when every line parses as a known event with the documented
//! schema (and any `--expect-*`/`--min-*`/`--max-*` assertions hold),
//! 1 otherwise — the CI telemetry smoke test runs this over a
//! `cold-gen --journal` output, and the crash-recovery smoke over the
//! resumed leg's journal.
//!
//! Trace envelopes (`trace_id`/`span_id`/`parent_id`) are always checked
//! for well-formedness and causal consistency: every `parent_id` must
//! resolve to a span seen on the same trace, and every trace must have a
//! root. `--require-trace` additionally demands that *every* event carry
//! a trace envelope (the contract for served jobs).
//!
//! Per-generation `hypervolume` is always checked to be finite and
//! non-negative; `--hypervolume-monotone` additionally asserts it never
//! decreases within a run (the Pareto archive's contract — scalar runs
//! emit a constant 0.0 and pass trivially).

use cold_obs::trace::validate_trace;
use cold_obs::{parse_journal_traced, Event};

const USAGE: &str = "journal-check — validate a COLD JSONL run journal

USAGE:
    journal-check [--expect-runs <N>] [--min-checkpoints <N>] [--max-failures <N>] \
[--require-trace] [--hypervolume-monotone] <journal.jsonl>
";

fn main() {
    let mut expect_runs: Option<usize> = None;
    let mut min_checkpoints: Option<usize> = None;
    let mut max_failures: Option<usize> = None;
    let mut require_trace = false;
    let mut hypervolume_monotone = false;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-runs" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
                expect_runs = Some(v.parse().expect("--expect-runs: integer"));
            }
            "--min-checkpoints" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
                min_checkpoints = Some(v.parse().expect("--min-checkpoints: integer"));
            }
            "--max-failures" => {
                let v = args.next().unwrap_or_else(|| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
                max_failures = Some(v.parse().expect("--max-failures: integer"));
            }
            "--require-trace" => require_trace = true,
            "--hypervolume-monotone" => hypervolume_monotone = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("unexpected argument `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("journal-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let traced = match parse_journal_traced(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("journal-check: {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut failures = validate_trace(&traced, require_trace);
    let events: Vec<Event> = traced.into_iter().map(|(e, _)| e).collect();

    let mut runs = 0usize;
    let mut generations = 0usize;
    let mut checkpoints = 0usize;
    let mut trial_failures = 0usize;
    let mut deadline_exceeded = 0usize;
    let mut stalls = 0usize;
    let mut faults = 0usize;
    let mut jobs = 0usize;
    let mut job_failures = 0usize;
    let mut cache_hits = 0usize;
    let mut workers_joined = 0usize;
    let mut workers_lost = 0usize;
    let mut leases = 0usize;
    let mut migrations = 0usize;
    // Last hypervolume seen per run id, for the `--hypervolume-monotone` check.
    let mut last_hypervolume: std::collections::HashMap<String, f64> =
        std::collections::HashMap::new();
    // Distributed-protocol causality: lease ids must resolve against an
    // earlier trial_leased, lost workers against an earlier worker_joined,
    // and an eviction that orphans leases must be followed by their
    // migration (or the trial's lost-trial record).
    let mut known_workers: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut known_leases: std::collections::HashSet<String> = std::collections::HashSet::new();
    // Warm-start causality: a `warm_start` parent must be an id the
    // journal has already introduced (a run, a job, or an earlier
    // warm-started id) — a child claiming an unseen parent is lying about
    // its provenance.
    let mut known_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut evolution_steps = 0usize;
    let mut warm_starts = 0usize;
    let mut orphaning_losses: Vec<(usize, String)> = Vec::new();
    let mut recovery_indices: Vec<usize> = Vec::new();
    for (idx, event) in events.iter().enumerate() {
        match event {
            Event::RunStart(r) => {
                runs += 1;
                known_ids.insert(r.run.clone());
            }
            Event::Generation(g) => {
                generations += 1;
                if !g.record.best.is_finite() || g.record.best > g.record.mean + 1e-12 {
                    failures.push(format!(
                        "run {} gen {}: best {} exceeds mean {}",
                        g.run, g.record.generation, g.record.best, g.record.mean
                    ));
                }
                for (phase, seconds) in [
                    ("eval_seconds", g.record.eval_seconds),
                    ("breed_seconds", g.record.breed_seconds),
                    ("repair_seconds", g.record.repair_seconds),
                ] {
                    if !seconds.is_finite() || seconds < 0.0 {
                        failures.push(format!(
                            "run {} gen {}: {phase} {seconds} must be non-negative seconds",
                            g.run, g.record.generation
                        ));
                    }
                }
                let hv = g.record.hypervolume;
                if !hv.is_finite() || hv < 0.0 {
                    failures.push(format!(
                        "run {} gen {}: hypervolume {hv} must be finite and non-negative",
                        g.run, g.record.generation
                    ));
                } else if hypervolume_monotone {
                    let prev = last_hypervolume.entry(g.run.clone()).or_insert(hv);
                    if hv + 1e-12 < *prev {
                        failures.push(format!(
                            "run {} gen {}: hypervolume {hv} regressed below {}",
                            g.run, g.record.generation, *prev
                        ));
                    } else {
                        *prev = hv;
                    }
                }
            }
            Event::RunEnd(e) => {
                if !(0.0..=1.0).contains(&e.cache_hit_rate) {
                    failures
                        .push(format!("run {}: hit rate {} out of range", e.run, e.cache_hit_rate));
                }
            }
            Event::TrialFailed(t) => {
                trial_failures += 1;
                recovery_indices.push(idx);
                if t.attempt == 0 {
                    failures.push(format!("trial {}: attempt numbers are 1-based", t.trial));
                }
            }
            Event::Checkpoint(c) => {
                checkpoints += 1;
                if c.completed > c.total {
                    failures.push(format!(
                        "checkpoint {}: completed {} exceeds total {}",
                        c.path, c.completed, c.total
                    ));
                }
            }
            Event::TrialDeadlineExceeded(d) => {
                deadline_exceeded += 1;
                if d.attempt == 0 {
                    failures.push(format!("trial {}: attempt numbers are 1-based", d.trial));
                }
                if !d.seconds.is_finite() || d.seconds <= 0.0 {
                    failures.push(format!(
                        "trial {}: deadline {} must be a positive number of seconds",
                        d.trial, d.seconds
                    ));
                }
            }
            Event::GaStalled(s) => {
                stalls += 1;
                if s.stall_gens == 0 {
                    failures.push(format!("run {}: stall window must be >= 1", s.run));
                }
                if s.generation < s.stall_gens {
                    failures.push(format!(
                        "run {}: stalled at gen {} before the {}-generation window could elapse",
                        s.run, s.generation, s.stall_gens
                    ));
                }
            }
            Event::FaultInjected(f) => {
                faults += 1;
                if f.hit == 0 {
                    failures.push(format!("fault {}: hit indices are 1-based", f.site));
                }
            }
            Event::JobSubmitted(j) => {
                jobs += 1;
                if j.count == 0 {
                    failures.push(format!("job {}: trial count must be >= 1", j.id));
                }
                if j.id.len() != 16 || !j.id.bytes().all(|b| b.is_ascii_hexdigit()) {
                    failures.push(format!("job {}: id is not a 16-hex-digit fingerprint", j.id));
                }
                known_ids.insert(j.id.clone());
            }
            Event::JobStarted(j) => {
                known_ids.insert(j.id.clone());
            }
            Event::JobDone(j) => {
                if !j.seconds.is_finite() || j.seconds < 0.0 {
                    failures.push(format!(
                        "job {}: duration {} must be a non-negative number of seconds",
                        j.id, j.seconds
                    ));
                }
            }
            Event::JobFailed(j) => {
                job_failures += 1;
                if j.error.is_empty() {
                    failures.push(format!("job {}: failed without an error message", j.id));
                }
            }
            Event::CacheHit(c) => {
                cache_hits += 1;
                if c.kind != "result" && c.kind != "inflight" {
                    failures.push(format!(
                        "job {}: cache hit kind `{}` is not `result` or `inflight`",
                        c.id, c.kind
                    ));
                }
                known_ids.insert(c.id.clone());
            }
            Event::WorkerJoined(w) => {
                workers_joined += 1;
                if w.worker.is_empty() {
                    failures.push("worker_joined: empty worker name".into());
                }
                known_workers.insert(w.worker.clone());
            }
            Event::WorkerLost(w) => {
                workers_lost += 1;
                if !known_workers.contains(&w.worker) {
                    failures
                        .push(format!("worker_lost: worker `{}` was never seen joining", w.worker));
                }
                if w.leases > 0 {
                    orphaning_losses.push((idx, w.worker.clone()));
                }
            }
            Event::TrialLeased(l) => {
                leases += 1;
                if l.id.len() != 16 || !l.id.bytes().all(|b| b.is_ascii_hexdigit()) {
                    failures.push(format!("lease {}: job id `{}` is not 16 hex", l.lease, l.id));
                }
                if l.lease.len() != 16 || !l.lease.bytes().all(|b| b.is_ascii_hexdigit()) {
                    failures.push(format!("trial_leased: lease id `{}` is not 16 hex", l.lease));
                }
                if l.attempt == 0 {
                    failures.push(format!("lease {}: lease attempt numbers are 1-based", l.lease));
                }
                known_leases.insert(l.lease.clone());
            }
            Event::TrialMigrated(m) => {
                migrations += 1;
                recovery_indices.push(idx);
                if !known_leases.contains(&m.lease) {
                    failures.push(format!(
                        "trial_migrated: lease `{}` does not resolve to a trial_leased event",
                        m.lease
                    ));
                }
                // `from_worker == to_worker` is legal: a worker that
                // missed its heartbeat window, was evicted, and
                // re-registered may reacquire its own trial.
            }
            Event::EvolutionStep(s) => {
                evolution_steps += 1;
                if !matches!(s.kind.as_str(), "base" | "add_pop" | "scale_traffic" | "cost_change")
                {
                    failures.push(format!(
                        "evolution_step {} step {}: unknown perturbation kind `{}`",
                        s.run, s.step, s.kind
                    ));
                }
                if !s.best_cost.is_finite() {
                    failures.push(format!(
                        "evolution_step {} step {}: best cost {} is not finite",
                        s.run, s.step, s.best_cost
                    ));
                }
                if s.n == 0 {
                    failures
                        .push(format!("evolution_step {} step {}: empty context", s.run, s.step));
                }
                known_ids.insert(s.run.clone());
            }
            Event::WarmStart(w) => {
                warm_starts += 1;
                if w.seeds == 0 {
                    failures.push(format!("warm_start {}: seeded zero population members", w.id));
                }
                if !known_ids.contains(&w.parent) {
                    failures.push(format!(
                        "warm_start {}: parent `{}` does not appear earlier in the journal",
                        w.id, w.parent
                    ));
                }
                known_ids.insert(w.id.clone());
            }
            Event::Span(_) | Event::SpanStart(_) | Event::Metrics(_) => {}
        }
    }
    for (idx, worker) in &orphaning_losses {
        if !recovery_indices.iter().any(|&r| r > *idx) {
            failures.push(format!(
                "worker_lost: `{worker}` orphaned leases with no later trial_migrated \
                 or trial_failed record"
            ));
        }
    }
    if let Some(expected) = expect_runs {
        if runs != expected {
            failures.push(format!("expected {expected} run_start events, found {runs}"));
        }
    }
    if let Some(min) = min_checkpoints {
        if checkpoints < min {
            failures.push(format!("expected >= {min} checkpoint events, found {checkpoints}"));
        }
    }
    if let Some(max) = max_failures {
        if trial_failures > max {
            failures.push(format!("expected <= {max} trial_failed events, found {trial_failures}"));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("journal-check: {path}: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "journal-check: {path}: OK ({} events, {runs} runs, {generations} generation traces, \
         {checkpoints} checkpoints, {trial_failures} trial failures, {deadline_exceeded} \
         deadline overruns, {stalls} stalls, {faults} injected faults, {jobs} jobs, \
         {job_failures} job failures, {cache_hits} cache hits, {workers_joined} workers \
         joined, {workers_lost} workers lost, {leases} leases, {migrations} migrations, \
         {evolution_steps} evolution steps, {warm_starts} warm starts)",
        events.len()
    );
}
