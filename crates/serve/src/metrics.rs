//! Prometheus-style text rendering of the `cold-obs` metric registry.
//!
//! The registry stores dotted names (`serve.jobs_submitted`,
//! `cost.evaluate_total`); `/metrics` exposes them with the conventional
//! `cold_` namespace and underscores: counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="..."}` series (on the
//! registry's log-scale bounds) plus `_sum` and `_count`. The previous
//! `_min`/`_max` pseudo-summary series were nonconformant — no Prometheus
//! type emits them — and are gone.

use cold_obs::registry::BUCKET_BOUNDS;
use cold_obs::Metric;

/// Counter names the serve layer increments (registered lazily on first
/// touch, like every `cold-obs` metric).
pub mod names {
    /// HTTP requests handled, any route.
    pub const HTTP_REQUESTS: &str = "serve.http_requests";
    /// Jobs accepted into the queue.
    pub const JOBS_SUBMITTED: &str = "serve.jobs_submitted";
    /// Jobs that completed and cached a result.
    pub const JOBS_COMPLETED: &str = "serve.jobs_completed";
    /// Jobs that failed terminally.
    pub const JOBS_FAILED: &str = "serve.jobs_failed";
    /// Submissions answered from the on-disk result cache.
    pub const CACHE_HITS_RESULT: &str = "serve.cache_hits_result";
    /// Submissions coalesced onto an in-flight job.
    pub const CACHE_HITS_INFLIGHT: &str = "serve.cache_hits_inflight";
    /// Submissions refused with 503 (queue at capacity).
    pub const QUEUE_REJECTIONS: &str = "serve.queue_rejections";
    /// Evolve jobs that seeded their GA population from a parent job's
    /// cached design (as opposed to falling back to a cold start).
    pub const WARM_STARTS: &str = "serve.warm_starts";
    /// Completed job directories removed by LRU cache eviction.
    pub const CACHE_EVICTIONS: &str = "serve.cache_evictions";
    /// Worker panics contained by the job boundary.
    pub const WORKER_PANICS: &str = "serve.worker_panics";
    /// Wall-clock seconds per completed job (histogram).
    pub const JOB_SECONDS: &str = "serve.job_seconds";
    /// Seconds a job waited in the queue before a worker picked it up
    /// (histogram).
    pub const JOB_QUEUE_WAIT_SECONDS: &str = "serve.job_queue_wait_seconds";
    /// Jobs currently waiting in the queue (gauge).
    pub const QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Jobs currently being executed (gauge).
    pub const JOBS_INFLIGHT: &str = "serve.jobs_inflight";
    /// Worker threads alive in the pool (gauge).
    pub const WORKERS_ACTIVE: &str = "serve.workers_active";
    /// Remote workers currently registered with the distributed
    /// coordinator (gauge; rendered as `cold_dist_workers_alive`).
    pub const DIST_WORKERS_ALIVE: &str = "dist.workers_alive";
    /// Trial leases currently outstanding across all jobs (gauge;
    /// rendered as `cold_dist_leases_active`).
    pub const DIST_LEASES_ACTIVE: &str = "dist.leases_active";
}

/// Renders the current registry snapshot as Prometheus exposition text.
pub fn render() -> String {
    let mut out = String::new();
    for (name, metric) in cold_obs::snapshot() {
        let flat = format!("cold_{}", name.replace('.', "_"));
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("# TYPE {flat} counter\n{flat} {c}\n"));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("# TYPE {flat} gauge\n{flat} {g}\n"));
            }
            Metric::FloatGauge(g) => {
                out.push_str(&format!("# TYPE {flat} gauge\n{flat} {g}\n"));
            }
            Metric::Histogram { count, sum, buckets, .. } => {
                out.push_str(&format!("# TYPE {flat} histogram\n"));
                // Prometheus buckets are cumulative; the registry stores
                // per-bucket counts with overflow implicit in `count`.
                let mut cumulative = 0u64;
                for (bound, in_bucket) in BUCKET_BOUNDS.iter().zip(buckets) {
                    cumulative += in_bucket;
                    out.push_str(&format!("{flat}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                }
                out.push_str(&format!(
                    "{flat}_bucket{{le=\"+Inf\"}} {count}\n{flat}_sum {sum}\n{flat}_count {count}\n"
                ));
            }
        }
    }
    out
}

/// Reads the value of counter/gauge `flat_name` out of rendered
/// exposition text — the assertion helper the smoke tests and loadgen
/// use. Matches only the exact bare sample name, never `_bucket`/`_sum`/
/// `_count` series or `# TYPE` lines that share the prefix.
pub fn parse_counter(text: &str, flat_name: &str) -> Option<u64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.split(' ').next() == Some(flat_name))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_flattens_names_and_round_trips_counters() {
        // The registry is process-global; scope this test's effect.
        cold_obs::set_timers_enabled(true);
        cold_obs::reset();
        cold_obs::counter_add(names::JOBS_SUBMITTED, 3);
        cold_obs::observe_seconds(names::JOB_SECONDS, 0.5);
        cold_obs::gauge_set(names::QUEUE_DEPTH, 4);
        let text = render();
        cold_obs::set_timers_enabled(false);
        cold_obs::reset();

        assert_eq!(parse_counter(&text, "cold_serve_jobs_submitted"), Some(3));
        assert!(text.contains("# TYPE cold_serve_jobs_submitted counter"));
        assert!(text.contains("# TYPE cold_serve_queue_depth gauge"));
        assert_eq!(parse_counter(&text, "cold_serve_queue_depth"), Some(4));
        assert!(text.contains("cold_serve_job_seconds_count 1"));
        assert!(text.contains("cold_serve_job_seconds_sum 0.5"));
        assert!(text.contains("# TYPE cold_serve_job_seconds histogram"));
        // 0.5s lands in the le="1" bucket; cumulative series reach 1 by +Inf.
        assert!(text.contains("cold_serve_job_seconds_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("cold_serve_job_seconds_bucket{le=\"+Inf\"} 1"));
        // The nonconformant pseudo-summary series are gone.
        assert!(!text.contains("_min "), "{text}");
        assert!(!text.contains("_max "), "{text}");
    }

    #[test]
    fn parse_counter_ignores_series_sharing_the_prefix() {
        let text = "# TYPE cold_x counter\ncold_x_bucket{le=\"1\"} 9\ncold_x_sum 9\ncold_x 7\n";
        assert_eq!(parse_counter(text, "cold_x"), Some(7));
        assert_eq!(parse_counter(text, "cold_x_sum"), Some(9));
        assert_eq!(parse_counter(text, "cold_missing"), None);
    }
}
