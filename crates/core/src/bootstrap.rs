//! Bootstrap confidence intervals.
//!
//! Fig 3's "error bars denote 95% bootstrap confidence intervals for the
//! mean of the results" and Fig 5's "95% confidence intervals based on 200
//! simulations per data point" both need a percentile bootstrap of the
//! sample mean, implemented here with a seeded RNG for reproducibility.

use cold_context::rng::rng_for;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A summary of a sample with a bootstrap CI on its mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
    /// Number of observations.
    pub count: usize,
}

/// Percentile-bootstrap CI for the mean of `samples`.
///
/// `confidence` is e.g. `0.95`; `resamples` around 1000 is plenty for the
/// paper's plots. Degenerate inputs (empty → NaN mean; single observation →
/// zero-width interval) are handled explicitly.
pub fn bootstrap_mean_ci(samples: &[f64], confidence: f64, resamples: usize, seed: u64) -> MeanCi {
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0, "confidence in (0,1)");
    let n = samples.len();
    if n == 0 {
        return MeanCi { mean: f64::NAN, lo: f64::NAN, hi: f64::NAN, count: 0 };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return MeanCi { mean, lo: mean, hi: mean, count: 1 };
    }
    let mut rng = rng_for(seed, 0xB005);
    let mut means: Vec<f64> = (0..resamples.max(2))
        .map(|_| {
            let mut s = 0.0;
            for _ in 0..n {
                s += samples[rng.gen_range(0..n)];
            }
            s / n as f64
        })
        .collect();
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((means.len() as f64) * alpha).floor() as usize;
    let hi_idx = (((means.len() as f64) * (1.0 - alpha)).ceil() as usize).min(means.len()) - 1;
    MeanCi { mean, lo: means[lo_idx.min(means.len() - 1)], hi: means[hi_idx], count: n }
}

/// Simple sample standard deviation (n − 1 denominator); `0` for n < 2.
pub fn sample_std(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_brackets_mean() {
        let samples: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&samples, 0.95, 1000, 1);
        assert!((ci.mean - 4.5).abs() < 1e-12);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.hi - ci.lo < 2.0, "CI too wide: [{}, {}]", ci.lo, ci.hi);
        assert!(ci.hi - ci.lo > 0.0);
    }

    #[test]
    fn constant_sample_zero_width() {
        let ci = bootstrap_mean_ci(&[7.0; 50], 0.95, 500, 2);
        assert_eq!(ci.mean, 7.0);
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = bootstrap_mean_ci(&[], 0.95, 100, 3);
        assert!(empty.mean.is_nan());
        assert_eq!(empty.count, 0);
        let single = bootstrap_mean_ci(&[3.5], 0.95, 100, 4);
        assert_eq!((single.lo, single.hi), (3.5, 3.5));
    }

    #[test]
    fn reproducible() {
        let samples: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let a = bootstrap_mean_ci(&samples, 0.9, 500, 5);
        let b = bootstrap_mean_ci(&samples, 0.9, 500, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_confidence_wider_interval() {
        let samples: Vec<f64> = (0..60).map(|i| ((i * 37) % 17) as f64).collect();
        let c90 = bootstrap_mean_ci(&samples, 0.90, 2000, 6);
        let c99 = bootstrap_mean_ci(&samples, 0.99, 2000, 6);
        assert!(c99.hi - c99.lo >= c90.hi - c90.lo);
    }

    #[test]
    fn std_dev_matches_known_value() {
        assert_eq!(sample_std(&[2.0, 2.0, 2.0]), 0.0);
        let s = sample_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(sample_std(&[1.0]), 0.0);
    }
}
