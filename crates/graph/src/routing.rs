//! Shortest-path routing of a traffic matrix and per-link load accumulation.
//!
//! This implements the capacity side of the paper's cost model (§3.2.1):
//! every demand `t(s, t)` is routed on the shortest geometric path, the
//! bandwidth `w_i` required on link `i` is the sum of all demands whose
//! route crosses it, and the bandwidth cost satisfies the identity
//! `Σ_i k2·ℓ_i·w_i = k2 · Σ_r t_r · L_r` (paper eq. 1 with O = 1; the
//! overprovisioning factor multiplies capacities uniformly and does not
//! affect which topology is optimal).
//!
//! The per-source accumulation runs in O(n) after each Dijkstra by pushing
//! subtree demand down the shortest-path tree in children-before-parents
//! order — the same trick as Brandes' betweenness accumulation — so the
//! all-pairs routing is O(n·m·log n + n²), not O(n³·path length). The
//! ordering must *not* be by decreasing distance: with zero-length edges
//! (coincident PoPs) a parent and child tie on distance, and a distance
//! ordering could process the parent first and silently drop the child's
//! subtree load.
//!
//! Two entry points share that core. [`route_traffic`] materializes the
//! full [`RoutingResult`] (edge list, per-edge loads, shortest-path trees)
//! for reports and capacity plans; it orders the pass by decreasing tree
//! *depth* (hops), counting-sorted in O(n). [`route_loads_into`] is the
//! allocation-lean variant for objective evaluation — it reuses a
//! [`RoutingWorkspace`], runs Dijkstra over a precomputed CSR, and walks
//! the recorded settle order in reverse (children settle strictly after
//! parents, zero-length edges included) without building trees, an edge
//! list, or a depth pass. Both orders are valid children-first traversals;
//! per-link loads can differ between the two entry points only by
//! floating-point summation order (≈1 ULP), while `Σ t·L` is bit-identical.

use crate::graph::Graph;
use crate::shortest_path::{dijkstra, DijkstraWorkspace, ShortestPathTree};
use crate::{GraphError, Result};

/// The outcome of routing a traffic matrix over a topology.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// The topology's edges, sorted ascending as `(u, v)` with `u < v`.
    pub edges: Vec<(usize, usize)>,
    /// `load[i]` is the total traffic (both directions summed) carried by
    /// `edges[i]`. This is the required bandwidth `w_i` of §3.2.
    pub load: Vec<f64>,
    /// `Σ_r t_r · L_r`: traffic-weighted total route length (eq. 1).
    pub traffic_weighted_route_length: f64,
    /// One shortest-path tree per source — the "routing matrix" output the
    /// paper lists among the GA outputs (§4 Outputs).
    pub trees: Vec<ShortestPathTree>,
}

impl RoutingResult {
    /// Looks up the load on edge `{u, v}`; `None` if not an edge.
    pub fn load_on(&self, u: usize, v: usize) -> Option<f64> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).ok().map(|i| self.load[i])
    }

    /// The full route for an ordered demand `(s, t)`.
    pub fn route(&self, s: usize, t: usize) -> Option<Vec<usize>> {
        self.trees.get(s)?.path_to(t)
    }
}

/// Routes the ordered traffic matrix `traffic(s, t)` over `g` with edge
/// lengths `len(u, v)`, returning per-link loads.
///
/// Demands with `s == t` are ignored. Demands must be non-negative.
///
/// # Errors
/// Returns [`GraphError::Disconnected`] if any positive demand connects a
/// pair with no path.
pub fn route_traffic(
    g: &Graph,
    len: impl Fn(usize, usize) -> f64 + Copy,
    traffic: impl Fn(usize, usize) -> f64,
) -> Result<RoutingResult> {
    let n = g.n();
    let edges: Vec<(usize, usize)> = g.edges().collect();
    // Pair-index → edge-list position for O(1) load accumulation.
    let mut edge_slot = vec![usize::MAX; pair_count(n)];
    for (i, &(u, v)) in edges.iter().enumerate() {
        edge_slot[pair_slot(n, u, v)] = i;
    }
    let mut load = vec![0.0f64; edges.len()];
    let mut weighted_len = 0.0f64;
    let mut trees = Vec::with_capacity(n);
    let mut scratch = SubtreeScratch::default();
    for s in 0..n {
        let tree = dijkstra(g, s, len);
        weighted_len +=
            accumulate_source(s, &tree.dist, &tree.parent, &traffic, &mut scratch, |p, v, d| {
                let slot = edge_slot[pair_slot(n, p, v)];
                debug_assert_ne!(slot, usize::MAX, "tree edge must exist in graph");
                load[slot] += d;
            })?;
        trees.push(tree);
    }
    Ok(RoutingResult { edges, load, traffic_weighted_route_length: weighted_len, trees })
}

/// Reusable scratch for [`route_loads_into`]: the Dijkstra buffers, the
/// CSR adjacency with precomputed arc lengths, and the per-source demand
/// vector of the subtree pass. One workspace per worker thread makes
/// repeated objective evaluations allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct RoutingWorkspace {
    dijkstra: DijkstraWorkspace,
    scratch: SubtreeScratch,
    csr: CsrScratch,
}

/// CSR adjacency with per-arc lengths, rebuilt once per topology so the n
/// per-source Dijkstras read contiguous arrays instead of calling the
/// length closure ~2m times each.
#[derive(Debug, Default)]
struct CsrScratch {
    start: Vec<usize>,
    node: Vec<usize>,
    len: Vec<f64>,
}

impl CsrScratch {
    fn build(&mut self, g: &Graph, len: impl Fn(usize, usize) -> f64) {
        let n = g.n();
        self.start.clear();
        self.node.clear();
        self.len.clear();
        self.start.reserve(n + 1);
        self.start.push(0);
        for u in 0..n {
            for &v in g.neighbors(u) {
                let w = len(u, v);
                assert!(w >= 0.0, "negative or NaN edge length on ({u},{v}): {w}");
                self.node.push(v);
                self.len.push(w);
            }
            self.start.push(self.node.len());
        }
    }
}

impl RoutingWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Buffers of the per-source subtree-accumulation pass.
#[derive(Debug, Default)]
struct SubtreeScratch {
    demand: Vec<f64>,
    depth: Vec<usize>,
    counts: Vec<usize>,
    order: Vec<usize>,
}

/// Routes `traffic` over `g` like [`route_traffic`], but accumulates loads
/// into `load` (indexed by upper-triangle node-pair index, the ordering of
/// [`crate::AdjacencyMatrix::pair_index`]; non-edges stay `0.0`) and returns
/// `Σ_r t_r·L_r` — without materializing shortest-path trees, an edge list,
/// or any per-call allocation beyond growing the reused buffers.
///
/// The returned `Σ t·L` is bit-identical to [`route_traffic`]'s (same
/// Dijkstra, same demand loop). Per-link loads agree up to floating-point
/// summation order: subtree demand is pushed down in reverse settle order
/// here versus decreasing-depth order there, so a node's children can
/// accumulate into its demand in a different sequence (≈1 ULP).
///
/// # Errors
/// Returns [`GraphError::Disconnected`] if any positive demand connects a
/// pair with no path.
pub fn route_loads_into(
    g: &Graph,
    len: impl Fn(usize, usize) -> f64 + Copy,
    traffic: impl Fn(usize, usize) -> f64,
    ws: &mut RoutingWorkspace,
    load: &mut Vec<f64>,
) -> Result<f64> {
    let n = g.n();
    load.clear();
    load.resize(pair_count(n), 0.0);
    let RoutingWorkspace { dijkstra, scratch, csr } = ws;
    csr.build(g, len);
    let mut weighted_len = 0.0f64;
    for s in 0..n {
        dijkstra.run_csr(s, &csr.start, &csr.node, &csr.len);
        weighted_len += collect_demands(s, dijkstra.dist(), &traffic, &mut scratch.demand)?;
        // Push subtree demand down the tree in reverse settle order: every
        // tree child settled strictly after its parent (zero-length edges
        // included), so the reversal processes children first.
        let parent = dijkstra.parent();
        for &v in dijkstra.settle_order().iter().rev() {
            let d = scratch.demand[v];
            if v != s && d > 0.0 {
                let p = parent[v];
                load[pair_slot(n, p, v)] += d;
                scratch.demand[p] += d;
            }
        }
    }
    Ok(weighted_len)
}

/// Number of unordered node pairs on `n` nodes.
#[inline]
fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Flat upper-triangle index of the unordered pair `{u, v}`, matching
/// [`crate::AdjacencyMatrix::pair_index`] without needing a matrix.
#[inline]
fn pair_slot(n: usize, u: usize, v: usize) -> usize {
    debug_assert!(u != v && u < n && v < n, "bad pair ({u},{v}) for n={n}");
    let (i, j) = if u < v { (u, v) } else { (v, u) };
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Collects the demands out of source `s`, pushes them down the
/// shortest-path tree in decreasing-depth order, and reports each tree
/// link's contribution through `add_load(parent, node, demand)`.
/// Returns `Σ_t t(s,t)·dist[t]`.
fn accumulate_source(
    s: usize,
    dist: &[f64],
    parent: &[usize],
    traffic: &impl Fn(usize, usize) -> f64,
    scratch: &mut SubtreeScratch,
    mut add_load: impl FnMut(usize, usize, f64),
) -> Result<f64> {
    let weighted = collect_demands(s, dist, traffic, &mut scratch.demand)?;
    let demand = &mut scratch.demand;
    tree_depths(s, dist, parent, &mut scratch.depth);
    order_by_depth_desc(&scratch.depth, &mut scratch.counts, &mut scratch.order);
    for &v in &scratch.order {
        if demand[v] > 0.0 {
            let p = parent[v];
            debug_assert_ne!(p, usize::MAX);
            add_load(p, v, demand[v]);
            demand[p] += demand[v];
        }
    }
    Ok(weighted)
}

/// `Σ_t t(s,t)·dist[t]` for one source, with exactly the arithmetic and
/// accumulation order [`route_loads_into`] uses per source.
///
/// This is the building block incremental (delta) evaluation needs: after
/// repairing a single source's distance row it can recompute just that
/// source's weighted-demand contribution and still fold the per-source
/// terms in ascending source order, making the total bit-identical to a
/// full re-route. `demand` is a reusable scratch buffer (overwritten).
///
/// # Errors
/// Returns [`GraphError::Disconnected`] if any positive demand out of `s`
/// targets a node with non-finite `dist`.
pub fn source_weighted_demand(
    s: usize,
    dist: &[f64],
    traffic: impl Fn(usize, usize) -> f64,
    demand: &mut Vec<f64>,
) -> Result<f64> {
    collect_demands(s, dist, &traffic, demand)
}

/// Fills `demand` with the demands out of source `s` (rejecting positive
/// demand to unreachable nodes) and returns `Σ_t t(s,t)·dist[t]`. Both
/// routing entry points share this loop so their `Σ t·L` stays
/// bit-identical.
fn collect_demands(
    s: usize,
    dist: &[f64],
    traffic: &impl Fn(usize, usize) -> f64,
    demand: &mut Vec<f64>,
) -> Result<f64> {
    let n = dist.len();
    demand.clear();
    demand.resize(n, 0.0);
    let mut weighted = 0.0f64;
    for t in 0..n {
        if t == s {
            continue;
        }
        let d = traffic(s, t);
        assert!(d >= 0.0, "negative or NaN demand ({s},{t}): {d}");
        if d > 0.0 {
            if !dist[t].is_finite() {
                return Err(GraphError::Disconnected);
            }
            demand[t] += d;
            weighted += d * dist[t];
        }
    }
    Ok(weighted)
}

/// Computes each reachable node's hop depth in the shortest-path tree
/// (`usize::MAX` for unreachable nodes) by memoized parent walks — O(n)
/// amortized, since every node's depth is assigned exactly once.
fn tree_depths(source: usize, dist: &[f64], parent: &[usize], depth: &mut Vec<usize>) {
    let n = dist.len();
    depth.clear();
    depth.resize(n, usize::MAX);
    depth[source] = 0;
    for start in 0..n {
        if depth[start] != usize::MAX || !dist[start].is_finite() {
            continue;
        }
        // Walk up to the first node of known depth, then assign the chain.
        let mut v = start;
        let mut steps = 0usize;
        while depth[v] == usize::MAX {
            v = parent[v];
            steps += 1;
        }
        let mut d = depth[v] + steps;
        let mut v = start;
        while depth[v] == usize::MAX {
            depth[v] = d;
            d -= 1;
            v = parent[v];
        }
    }
}

/// Counting-sorts the reachable non-source nodes by *decreasing* tree depth
/// into `order`, so every child precedes its parent. A zero-length tree
/// edge gives parent and child equal *distance* but never equal depth,
/// which is why depth (not distance) must order the subtree pass.
fn order_by_depth_desc(depth: &[usize], counts: &mut Vec<usize>, order: &mut Vec<usize>) {
    let max_depth = depth.iter().filter(|&&d| d != usize::MAX).max().copied().unwrap_or(0);
    counts.clear();
    counts.resize(max_depth + 1, 0);
    for &d in depth {
        if d != usize::MAX && d > 0 {
            counts[d] += 1;
        }
    }
    // Turn counts into bucket start offsets for descending depth.
    let mut acc = 0usize;
    for d in (1..=max_depth).rev() {
        let c = counts[d];
        counts[d] = acc;
        acc += c;
    }
    order.clear();
    order.resize(acc, 0);
    for (v, &d) in depth.iter().enumerate() {
        if d != usize::MAX && d > 0 {
            order[counts[d]] = v;
            counts[d] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_traffic(_: usize, _: usize) -> f64 {
        1.0
    }

    #[test]
    fn path_graph_loads_peak_in_middle() {
        // 0-1-2-3: edge (1,2) carries all 4 crossing demands ×2 directions.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = route_traffic(&g, |_, _| 1.0, uniform_traffic).unwrap();
        // (0,1): demands {0}↔{1,2,3} = 3 each way ⇒ 6.
        assert_eq!(r.load_on(0, 1), Some(6.0));
        // (1,2): {0,1}↔{2,3} = 4 each way ⇒ 8.
        assert_eq!(r.load_on(1, 2), Some(8.0));
        assert_eq!(r.load_on(2, 3), Some(6.0));
        assert_eq!(r.load_on(0, 2), None);
    }

    #[test]
    fn weighted_route_length_matches_link_identity() {
        // eq. (1): Σ t_r L_r == Σ ℓ_i w_i for any lengths and demands.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let len = |u: usize, v: usize| ((u + 2 * v) % 5 + 1) as f64 * 0.1;
        let sym = move |u: usize, v: usize| if u < v { len(u, v) } else { len(v, u) };
        let traffic = |s: usize, t: usize| ((s * 3 + t) % 4) as f64;
        let r = route_traffic(&g, sym, traffic).unwrap();
        let link_side: f64 = r.edges.iter().zip(&r.load).map(|(&(u, v), &w)| sym(u, v) * w).sum();
        assert!(
            (link_side - r.traffic_weighted_route_length).abs() < 1e-9,
            "Σ ℓ·w = {link_side} vs Σ t·L = {}",
            r.traffic_weighted_route_length
        );
    }

    #[test]
    fn star_routes_through_hub() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let r = route_traffic(&g, |_, _| 1.0, uniform_traffic).unwrap();
        // Each spoke edge carries: own↔hub (2) + own↔two other spokes (4) = 6.
        for v in 1..4 {
            assert_eq!(r.load_on(0, v), Some(6.0));
        }
        assert_eq!(r.route(1, 2), Some(vec![1, 0, 2]));
    }

    #[test]
    fn disconnected_with_demand_errors() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(
            route_traffic(&g, |_, _| 1.0, uniform_traffic).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn disconnected_without_demand_is_fine() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        // Traffic only between 0 and 1.
        let t = |s: usize, d: usize| if s < 2 && d < 2 { 1.0 } else { 0.0 };
        let r = route_traffic(&g, |_, _| 1.0, t).unwrap();
        assert_eq!(r.load_on(0, 1), Some(2.0));
    }

    #[test]
    fn zero_traffic_zero_loads() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let r = route_traffic(&g, |_, _| 1.0, |_, _| 0.0).unwrap();
        assert!(r.load.iter().all(|&l| l == 0.0));
        assert_eq!(r.traffic_weighted_route_length, 0.0);
    }

    #[test]
    fn zero_length_edge_does_not_drop_subtree_loads() {
        // Two PoPs at identical coordinates: nodes 1 and 2 coincide, so the
        // edge (1,2) has length 0. In the tree from source 0, node 2 is the
        // parent of node 1 at *equal distance*; the old decreasing-distance
        // ordering processed the parent first and dropped the child's
        // subtree demand from edge (0,2).
        let g = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let len = |u: usize, v: usize| {
            let (u, v) = if u < v { (u, v) } else { (v, u) };
            if (u, v) == (1, 2) {
                0.0
            } else {
                1.0
            }
        };
        let r = route_traffic(&g, len, uniform_traffic).unwrap();
        // (0,2) carries 0↔1 and 0↔2: four unit demands.
        assert_eq!(r.load_on(0, 2), Some(4.0));
        // (1,2) carries 0↔1 and 1↔2: four unit demands.
        assert_eq!(r.load_on(1, 2), Some(4.0));
        // And the eq. (1) identity must hold: Σ ℓ·w = 1·4 + 0·4 = Σ t·L.
        let link_side: f64 = r.edges.iter().zip(&r.load).map(|(&(u, v), &w)| len(u, v) * w).sum();
        assert_eq!(link_side, r.traffic_weighted_route_length);
        // The lean path (reverse settle order) must not drop the load
        // either.
        let mut ws = RoutingWorkspace::new();
        let mut load = Vec::new();
        let weighted = route_loads_into(&g, len, uniform_traffic, &mut ws, &mut load).unwrap();
        assert_eq!(weighted, r.traffic_weighted_route_length);
        assert_eq!(load[pair_slot(3, 0, 2)], 4.0);
        assert_eq!(load[pair_slot(3, 1, 2)], 4.0);
    }

    #[test]
    fn route_loads_into_matches_route_traffic() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let len = |u: usize, v: usize| ((u + 2 * v) % 5 + 1) as f64 * 0.1;
        let sym = move |u: usize, v: usize| if u < v { len(u, v) } else { len(v, u) };
        let traffic = |s: usize, t: usize| ((s * 3 + t) % 4) as f64;
        let full = route_traffic(&g, sym, traffic).unwrap();
        let mut ws = RoutingWorkspace::new();
        let mut load = Vec::new();
        let weighted = route_loads_into(&g, sym, traffic, &mut ws, &mut load).unwrap();
        assert_eq!(weighted, full.traffic_weighted_route_length, "Σ t·L must be bit-identical");
        assert_eq!(load.len(), 10);
        let m = crate::AdjacencyMatrix::from_edges(5, &full.edges).unwrap();
        for (i, &(u, v)) in full.edges.iter().enumerate() {
            assert_eq!(load[m.pair_index(u, v)], full.load[i], "load on ({u},{v})");
        }
        // Non-edges carry nothing.
        let carried: f64 = full.load.iter().sum();
        let total: f64 = load.iter().sum();
        assert_eq!(carried, total);
    }

    #[test]
    fn route_loads_into_reuses_workspace_across_graphs() {
        let mut ws = RoutingWorkspace::new();
        let mut load = Vec::new();
        // Larger graph first, then smaller: buffers must shrink correctly.
        let big = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        route_loads_into(&big, |_, _| 1.0, uniform_traffic, &mut ws, &mut load).unwrap();
        let small = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let weighted =
            route_loads_into(&small, |_, _| 1.0, uniform_traffic, &mut ws, &mut load).unwrap();
        let full = route_traffic(&small, |_, _| 1.0, uniform_traffic).unwrap();
        assert_eq!(weighted, full.traffic_weighted_route_length);
        assert_eq!(load.len(), 6);
        let m = crate::AdjacencyMatrix::from_edges(4, &full.edges).unwrap();
        for (i, &(u, v)) in full.edges.iter().enumerate() {
            assert_eq!(load[m.pair_index(u, v)], full.load[i]);
        }
    }

    #[test]
    fn route_loads_into_reports_disconnection() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut ws = RoutingWorkspace::new();
        let mut load = Vec::new();
        assert_eq!(
            route_loads_into(&g, |_, _| 1.0, uniform_traffic, &mut ws, &mut load).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn source_weighted_demand_folds_to_the_routed_total_bit_for_bit() {
        // Per-source terms computed through the public wrapper, folded in
        // ascending source order, must equal route_loads_into's Σ t·L
        // exactly — this identity is what lets delta-evaluation recompute
        // only repaired sources.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let len = |u: usize, v: usize| ((u + 2 * v) % 5 + 1) as f64 * 0.1;
        let sym = move |u: usize, v: usize| if u < v { len(u, v) } else { len(v, u) };
        let traffic = |s: usize, t: usize| ((s * 3 + t) % 4) as f64;
        let mut ws = RoutingWorkspace::new();
        let mut load = Vec::new();
        let total = route_loads_into(&g, sym, traffic, &mut ws, &mut load).unwrap();
        let mut demand = Vec::new();
        let mut folded = 0.0f64;
        for s in 0..g.n() {
            let tree = dijkstra(&g, s, sym);
            folded += source_weighted_demand(s, &tree.dist, traffic, &mut demand).unwrap();
        }
        assert_eq!(folded, total, "per-source fold must be bit-identical");
        // Positive demand to an unreachable target is still an error.
        let dist = vec![0.0, 1.0, f64::INFINITY];
        assert_eq!(
            source_weighted_demand(0, &dist, |_, _| 1.0, &mut demand).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn asymmetric_demands_sum_onto_undirected_link() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let t = |s: usize, d: usize| {
            if (s, d) == (0, 1) {
                3.0
            } else if (s, d) == (1, 0) {
                5.0
            } else {
                0.0
            }
        };
        let r = route_traffic(&g, |_, _| 2.0, t).unwrap();
        assert_eq!(r.load_on(0, 1), Some(8.0));
        assert_eq!(r.traffic_weighted_route_length, 16.0);
    }
}
