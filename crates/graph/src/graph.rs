//! Adjacency-list graph view used by traversal-heavy algorithms.

use crate::adjacency::AdjacencyMatrix;
use crate::{GraphError, Result};

/// An undirected simple graph stored as sorted adjacency lists.
///
/// [`Graph`] is the *read-optimized* companion to [`AdjacencyMatrix`]: the
/// GA mutates matrices, but shortest paths, BFS and metrics iterate
/// neighbors, which adjacency lists serve in O(degree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    m: usize,
}

impl Graph {
    /// Builds a graph from raw adjacency lists.
    ///
    /// Lists are sorted and deduplicated; the symmetric closure is taken so
    /// callers may supply each edge in either or both directions.
    ///
    /// # Panics
    /// Panics if any neighbor index is out of range or a self-loop appears.
    pub fn from_adjacency_lists(mut adj: Vec<Vec<usize>>) -> Self {
        let n = adj.len();
        // Symmetrize first so one-directional input is accepted.
        let mut extra: Vec<(usize, usize)> = Vec::new();
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(v < n, "neighbor {v} out of range (n={n})");
                assert_ne!(u, v, "self-loop at {u}");
                extra.push((v, u));
            }
        }
        for (u, v) in extra {
            adj[u].push(v);
        }
        let mut m = 0usize;
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            m += list.len();
        }
        debug_assert!(m.is_multiple_of(2));
        Self { adj, m: m / 2 }
    }

    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// # Errors
    /// Returns [`GraphError`] for out-of-range endpoints or self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            for &x in &[u, v] {
                if x >= n {
                    return Err(GraphError::NodeOutOfRange { index: x, n });
                }
            }
            adj[u].push(v);
        }
        Ok(Self::from_adjacency_lists(adj))
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Degrees of all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Whether edge `{u, v}` exists (binary search over the sorted list).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.adj[u].binary_search(&v).is_ok()
    }

    /// Iterator over edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Converts back to a bit-packed adjacency matrix.
    pub fn to_adjacency_matrix(&self) -> AdjacencyMatrix {
        let mut m = AdjacencyMatrix::empty(self.n());
        for (u, v) in self.edges() {
            m.set_edge(u, v, true);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_sorted_lists() {
        let g = Graph::from_edges(4, &[(2, 0), (0, 1), (3, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn symmetric_closure_and_dedup() {
        let g = Graph::from_adjacency_lists(vec![vec![1, 1], vec![0], vec![]]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            Graph::from_edges(3, &[(0, 4)]),
            Err(GraphError::NodeOutOfRange { index: 4, n: 3 })
        ));
        assert!(matches!(Graph::from_edges(3, &[(1, 1)]), Err(GraphError::SelfLoop(1))));
    }

    #[test]
    fn edge_iterator_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn round_trip_with_matrix() {
        let m = AdjacencyMatrix::from_edges(5, &[(0, 4), (1, 2), (3, 4)]).unwrap();
        let g = m.to_graph();
        assert_eq!(g.to_adjacency_matrix(), m);
    }
}
