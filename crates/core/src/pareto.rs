//! Multi-objective COLD synthesis: cost vs. resilience vs. delay.
//!
//! The paper optimizes the single scalar of eq. (2), but §2's invitation
//! to extend the model applies to the *shape* of the objective too: an
//! operator rarely wants one network, they want the trade-off curve
//! between build-out budget, failure exposure, and user-visible latency.
//! This module wires COLD's cost model into the NSGA-II engine of
//! [`cold_ga::pareto`] with three objectives, all minimized:
//!
//! 1. **Build cost** — eq. (2) exactly, evaluated through the same
//!    incremental [`cold_ga::ObjectiveSession`] machinery as scalar
//!    synthesis, so the delta-evaluation speedup carries over.
//! 2. **Worst single-link-failure impact** — from
//!    [`crate::failure::single_link_failures`]: the worst link's stranded
//!    traffic fraction plus a capped overload term (see
//!    [`UTILIZATION_WEIGHT`]).
//! 3. **Demand-weighted mean path length** — the capacity plan's
//!    traffic-weighted route length per unit of offered traffic, a
//!    propagation-delay proxy.
//!
//! The output is not one network but a bounded Pareto archive; each
//! front member is built into a full [`Network`].

use crate::error::ColdError;
use crate::failure::{single_link_failures, FailureReport};
use crate::objective::ColdObjective;
use crate::synthesizer::{ColdConfig, ProgressSink, SynthesisMode};
use cold_context::rng::derive_seed;
use cold_context::Context;
use cold_cost::{CostParams, Network};
use cold_ga::pareto::{MultiObjective, MultiObjectiveSession};
use cold_ga::{GaSettings, Objective, ObjectiveSession};
use cold_graph::AdjacencyMatrix;
use cold_heuristics::all_heuristics;

/// Weight of the capped overload term in the failure-impact objective,
/// relative to the stranded-traffic fraction (which dominates: losing
/// traffic outright is worse than congesting it).
pub const UTILIZATION_WEIGHT: f64 = 0.1;

/// Rerouted utilization beyond this cap stops increasing the impact
/// objective. Also guards the `INFINITY` sentinel
/// [`crate::failure::LinkFailureImpact::max_utilization`] uses for
/// links that carried nothing before a failure.
pub const UTILIZATION_CAP: f64 = 10.0;

/// Collapses a failure report into the scalar the impact objective
/// minimizes: over all single-link failures, the worst value of
/// `stranded_fraction + UTILIZATION_WEIGHT · min(util, CAP)/CAP`.
pub fn failure_impact(report: &FailureReport) -> f64 {
    report
        .impacts
        .iter()
        .map(|i| {
            i.stranded_traffic_fraction
                + UTILIZATION_WEIGHT * (i.max_utilization.min(UTILIZATION_CAP) / UTILIZATION_CAP)
        })
        .fold(0.0, f64::max)
}

/// COLD's three objectives packaged for the NSGA-II engine.
#[derive(Debug, Clone)]
pub struct ColdMultiObjective<'a> {
    inner: ColdObjective<'a>,
}

impl<'a> ColdMultiObjective<'a> {
    /// Creates the three-objective adapter for a context and cost
    /// parameters.
    pub fn new(ctx: &'a Context, params: CostParams) -> Self {
        Self { inner: ColdObjective::new(ctx, params) }
    }

    /// The context being optimized for.
    pub fn context(&self) -> &'a Context {
        self.inner.context()
    }

    /// The cost parameters.
    pub fn params(&self) -> CostParams {
        self.inner.params()
    }

    /// Objectives 2 and 3 — failure impact and demand-weighted mean path
    /// length. Both need full routing on the candidate, so they share one
    /// [`Network::build`].
    fn tail_objectives(&self, topology: &AdjacencyMatrix) -> (f64, f64) {
        let ctx = self.inner.context();
        let network = Network::build(topology.clone(), ctx, self.inner.params())
            .expect("GA repairs candidates before evaluation; topology must be connected");
        let impact = failure_impact(&single_link_failures(&network, ctx));
        let total = ctx.traffic.total();
        let delay =
            if total > 0.0 { network.plan.traffic_weighted_route_length() / total } else { 0.0 };
        (impact, delay)
    }
}

impl MultiObjective for ColdMultiObjective<'_> {
    fn n(&self) -> usize {
        Objective::n(&self.inner)
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn distance(&self, u: usize, v: usize) -> f64 {
        Objective::distance(&self.inner, u, v)
    }

    fn objectives(&self, topology: &AdjacencyMatrix) -> Vec<f64> {
        let cost = self.inner.cost(topology);
        let (impact, delay) = self.tail_objectives(topology);
        vec![cost, impact, delay]
    }

    fn session(&self) -> Box<dyn MultiObjectiveSession + '_> {
        // The cost component rides the inner delta session (bit-identical
        // to a full evaluation); the failure and delay components are pure
        // functions of the topology, recomputed per call.
        Box::new(ColdMultiSession { objective: self, inner: self.inner.session() })
    }

    fn k_nearest(&self, k: usize) -> Vec<Vec<usize>> {
        Objective::k_nearest(&self.inner, k)
    }
}

/// Per-worker session: incremental cost evaluation plus the two
/// routing-bound objectives.
struct ColdMultiSession<'a> {
    objective: &'a ColdMultiObjective<'a>,
    inner: Box<dyn ObjectiveSession + 'a>,
}

impl MultiObjectiveSession for ColdMultiSession<'_> {
    fn objectives(
        &mut self,
        topology: &AdjacencyMatrix,
        base: Option<&AdjacencyMatrix>,
    ) -> Vec<f64> {
        let cost = self.inner.cost(topology, base);
        let (impact, delay) = self.objective.tail_objectives(topology);
        vec![cost, impact, delay]
    }
    fn delta_evals(&self) -> usize {
        self.inner.delta_evals()
    }
    fn full_evals(&self) -> usize {
        self.inner.full_evals()
    }
}

/// One member of a served Pareto front: the fully built network plus its
/// objective vector `[build cost, failure impact, mean path length]`.
#[derive(Debug, Clone)]
pub struct ParetoFrontMember {
    /// The simulation-ready network.
    pub network: Network,
    /// The member's objective vector, same order as
    /// [`ColdMultiObjective::objectives`].
    pub objectives: Vec<f64>,
}

/// Everything produced by one multi-objective synthesis.
#[derive(Debug, Clone)]
pub struct ParetoSynthesisResult {
    /// The JSONL run journal, when journal tracing was active.
    pub journal_path: Option<std::path::PathBuf>,
    /// The context the front was designed for.
    pub context: Context,
    /// The final archive, every member built into a network. Mutually
    /// non-dominated, sorted lexicographically by objective vector.
    pub front: Vec<ParetoFrontMember>,
    /// Archive hypervolume after each generation (index 0 = after the
    /// initial population). Monotone non-decreasing.
    pub hypervolume_history: Vec<f64>,
    /// The fixed hypervolume reference point.
    pub reference: Vec<f64>,
    /// Generations actually run.
    pub generations_run: usize,
    /// Objective evaluations requested.
    pub evaluations: usize,
    /// Fitness-cache and delta-evaluation counters.
    pub eval_stats: cold_ga::EvalStats,
    /// Why the engine returned.
    pub stop_reason: cold_ga::StopReason,
}

impl ParetoSynthesisResult {
    /// The front member with the lowest build cost.
    pub fn cheapest(&self) -> Option<&ParetoFrontMember> {
        self.front.iter().min_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]))
    }

    /// The final archive hypervolume.
    pub fn hypervolume(&self) -> f64 {
        self.hypervolume_history.last().copied().unwrap_or(0.0)
    }
}

/// Default bound on the Pareto archive carried across generations.
pub const DEFAULT_ARCHIVE_CAPACITY: usize = 32;

/// Multi-objective synthesis: generates the context for `seed`, then runs
/// NSGA-II over [`ColdMultiObjective`].
///
/// # Errors
/// [`ColdError::Config`] for invalid configuration, [`ColdError::Ga`] for
/// engine failures (non-finite objective components, bad settings).
pub fn try_synthesize_pareto(
    cfg: &ColdConfig,
    seed: u64,
    archive_capacity: usize,
) -> Result<ParetoSynthesisResult, ColdError> {
    cfg.validate()?;
    let ctx = cfg.context.generate(derive_seed(seed, 0xC0));
    try_synthesize_pareto_in_context(cfg, ctx, seed, archive_capacity, None)
}

/// [`try_synthesize_pareto`] within an explicit context, with an optional
/// live per-generation [`ProgressSink`] — the serve layer's entry point.
///
/// Telemetry mirrors scalar synthesis: a `run_start` event (mode
/// `"Pareto"`), one `generation` event per generation whose
/// `hypervolume` field carries the archive hypervolume, and a `run_end`
/// summary reporting the cheapest front member as `best_cost`.
///
/// # Errors
/// As [`try_synthesize_pareto`].
pub fn try_synthesize_pareto_in_context(
    cfg: &ColdConfig,
    ctx: Context,
    seed: u64,
    archive_capacity: usize,
    progress: Option<ProgressSink>,
) -> Result<ParetoSynthesisResult, ColdError> {
    let _span = cold_obs::span("core.synthesize_pareto");
    let traced = cold_obs::is_enabled();
    if traced {
        cold_obs::emit(&cold_obs::Event::RunStart(cold_obs::RunStart {
            run: cold_obs::run_id(seed),
            n: ctx.n(),
            mode: "Pareto".into(),
            generations: cfg.ga.generations,
            population: cfg.ga.population,
        }));
    }
    let objective = ColdMultiObjective::new(&ctx, cfg.params);
    let seeds: Vec<AdjacencyMatrix> = match cfg.mode {
        SynthesisMode::GaOnly => Vec::new(),
        SynthesisMode::Initialized => {
            let _t = cold_obs::timer("core.heuristic_seed");
            all_heuristics(
                objective.inner.evaluator(),
                &cfg.random_greedy,
                derive_seed(seed, 0x4755),
            )
            .into_iter()
            .map(|(_, r)| r.topology)
            .collect()
        }
    };
    let ga_settings = GaSettings { seed: derive_seed(seed, 0x6741), ..cfg.ga };
    let engine = cold_ga::pareto::ParetoGa::try_new(&objective, ga_settings, archive_capacity)?;
    let mut observer = crate::synthesizer::ObserverFanout::new(
        traced.then(|| cold_obs::TraceObserver::new(seed)),
        progress,
    );
    let result = if observer.is_active() {
        engine.try_run_traced(&seeds, Some(&mut observer))?
    } else {
        engine.try_run_traced(&seeds, None)?
    };
    let front: Vec<ParetoFrontMember> = result
        .front
        .iter()
        .map(|p| {
            let network = Network::build(p.topology.clone(), &ctx, cfg.params)
                .expect("archive members are repaired candidates, hence connected");
            ParetoFrontMember { network, objectives: p.objectives.clone() }
        })
        .collect();
    if traced {
        cold_obs::emit(&cold_obs::Event::RunEnd(cold_obs::RunEnd {
            run: cold_obs::run_id(seed),
            generations_run: result.generations_run,
            best_cost: front.iter().map(|m| m.objectives[0]).fold(f64::INFINITY, f64::min),
            evaluations: result.evaluations,
            cache_hit_rate: result.eval_stats.hit_rate(),
            eval_seconds: result.eval_stats.eval_seconds,
            repair_rate: result.repair_stats.repair_rate(),
        }));
    }
    Ok(ParetoSynthesisResult {
        journal_path: cold_obs::journal_path(),
        context: ctx,
        front,
        hypervolume_history: result.hypervolume_history,
        reference: result.reference,
        generations_run: result.generations_run,
        evaluations: result.evaluations,
        eval_stats: result.eval_stats,
        stop_reason: result.stop_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_ga::pareto::dominates;

    fn quick_cfg(n: usize) -> ColdConfig {
        let mut cfg = ColdConfig::quick(n, 4e-4, 10.0);
        cfg.ga.generations = 6;
        cfg
    }

    #[test]
    fn objective_vector_has_three_finite_components() {
        let cfg = quick_cfg(6);
        let ctx = cfg.context.generate(1);
        let obj = ColdMultiObjective::new(&ctx, cfg.params);
        let mst = cold_graph::mst::mst_matrix(6, ctx.distance_fn());
        let v = obj.objectives(&mst);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.is_finite()), "{v:?}");
        // A tree strands traffic on every cut: nonzero impact.
        assert!(v[1] > 0.0);
        // Build cost matches the scalar objective exactly.
        assert_eq!(v[0], ColdObjective::new(&ctx, cfg.params).cost(&mst));
    }

    #[test]
    fn session_is_bit_identical_to_full_evaluation() {
        let cfg = quick_cfg(7);
        let ctx = cfg.context.generate(2);
        let obj = ColdMultiObjective::new(&ctx, cfg.params);
        let mut session = obj.session();
        let mst = cold_graph::mst::mst_matrix(7, ctx.distance_fn());
        assert_eq!(session.objectives(&mst, None), obj.objectives(&mst));
        let mut ringed = mst.clone();
        ringed.set_edge(0, 6, true);
        assert_eq!(session.objectives(&ringed, Some(&mst)), obj.objectives(&ringed));
        assert!(session.delta_evals() > 0, "cost component must take the delta path");
    }

    #[test]
    fn pareto_synthesis_yields_mutually_non_dominated_networks() {
        let cfg = quick_cfg(8);
        let r = try_synthesize_pareto(&cfg, 3, 16).unwrap();
        assert!(r.front.len() >= 2, "front of {} gives no trade-off", r.front.len());
        for a in &r.front {
            for b in &r.front {
                assert!(
                    !dominates(&a.objectives, &b.objectives),
                    "{:?} dominates {:?}",
                    a.objectives,
                    b.objectives
                );
            }
        }
        for w in r.hypervolume_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "hypervolume regressed: {:?}", w);
        }
        assert!(r.hypervolume() > 0.0);
        assert!(r.eval_stats.delta_evals > 0, "pareto runs must reuse delta evaluation");
        // Every member is a real, connected network.
        for m in &r.front {
            assert!(m.network.total_cost() > 0.0);
            assert_eq!(m.network.n(), 8);
        }
    }

    #[test]
    fn pareto_synthesis_is_deterministic() {
        let cfg = quick_cfg(7);
        let a = try_synthesize_pareto(&cfg, 5, 8).unwrap();
        let b = try_synthesize_pareto(&cfg, 5, 8).unwrap();
        assert_eq!(a.front.len(), b.front.len());
        for (x, y) in a.front.iter().zip(&b.front) {
            assert_eq!(x.network.topology, y.network.topology);
            assert_eq!(x.objectives, y.objectives);
        }
        assert_eq!(a.hypervolume_history, b.hypervolume_history);
    }

    #[test]
    fn utilization_term_is_capped() {
        let report = FailureReport {
            impacts: vec![crate::failure::LinkFailureImpact {
                link: (0, 1),
                stranded_traffic_fraction: 0.25,
                max_utilization: f64::INFINITY,
                overloaded_links: 1,
                mean_stretch: 1.0,
            }],
        };
        let impact = failure_impact(&report);
        assert!(impact.is_finite());
        assert!((impact - (0.25 + UTILIZATION_WEIGHT)).abs() < 1e-12);
    }
}
