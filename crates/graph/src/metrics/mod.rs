//! Topology statistics used throughout the paper's evaluation (§6–§7).
//!
//! - [`degree`]: average node degree (Fig 5), coefficient of variation of
//!   node degree / CVND (Fig 8), hub and leaf counts (Fig 9).
//! - [`distance`]: hop diameter (Fig 6), average shortest-path length.
//! - [`clustering`]: global clustering coefficient (Fig 7), local averages.
//! - [`assortativity`]: degree assortativity and Li et al.'s `s`-metric
//!   (the "entropy function" of §2).
//! - [`betweenness`]: node and edge betweenness centrality (mentioned in
//!   §6's list of examined statistics).

pub mod assortativity;
pub mod betweenness;
pub mod clustering;
pub mod degree;
pub mod distance;
pub mod kcore;

pub use assortativity::{degree_assortativity, normalized_s_metric, s_metric};
pub use betweenness::{edge_betweenness, node_betweenness};
pub use clustering::{average_local_clustering, global_clustering, triangle_count};
pub use degree::{average_degree, cvnd, degree_stats, hub_count, leaf_count, DegreeStats};
pub use distance::{average_path_length, hop_diameter, weighted_diameter};
pub use kcore::{core_numbers, degeneracy, k_core_size};
