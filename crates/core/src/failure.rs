//! Single-link failure analysis — using COLD's networks for the purpose
//! they were built for.
//!
//! The paper's networks exist to drive simulations ("to test new
//! networking algorithms and protocols whose properties and performance
//! often depend on the structure of the underlying network", §1). This
//! module implements the canonical such study: fail each link in turn,
//! re-route all traffic on the surviving topology, and measure
//!
//! - **stranded traffic** (demand with no surviving path),
//! - **overload** (rerouted load vs installed capacity — meaningful when
//!   the network was provisioned with an overprovisioning factor `O > 1`),
//! - **stretch** (geometric route-length inflation).
//!
//! Because COLD emits capacities and routing, the whole analysis runs on
//! the synthesis output alone — requirement 5 of §1 paying off.

use cold_context::Context;
use cold_cost::Network;
use cold_graph::routing::route_traffic;
use serde::{Deserialize, Serialize};

/// Outcome of failing one link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFailureImpact {
    /// The failed link's endpoints.
    pub link: (usize, usize),
    /// Fraction of total offered traffic with no surviving route.
    pub stranded_traffic_fraction: f64,
    /// Maximum rerouted utilization (`new load / installed capacity`) over
    /// surviving links; `> 1` means congestion under the paper's
    /// provisioning. `0` when the network disconnects entirely aside from
    /// stranded pairs with no load shift.
    pub max_utilization: f64,
    /// Number of surviving links whose rerouted load exceeds capacity.
    pub overloaded_links: usize,
    /// Mean multiplicative stretch of the geometric route length over
    /// demands that survive (≥ 1).
    pub mean_stretch: f64,
}

/// Whole-network failure report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// Per-link impacts, ordered as `Network::links`.
    pub impacts: Vec<LinkFailureImpact>,
}

impl FailureReport {
    /// The single worst link by stranded traffic (ties: by utilization).
    pub fn worst(&self) -> Option<&LinkFailureImpact> {
        self.impacts.iter().max_by(|a, b| {
            a.stranded_traffic_fraction
                .total_cmp(&b.stranded_traffic_fraction)
                .then(a.max_utilization.total_cmp(&b.max_utilization))
        })
    }

    /// Fraction of links whose failure strands no traffic and overloads
    /// nothing — the "survivable share" of the network.
    pub fn survivable_link_fraction(&self) -> f64 {
        if self.impacts.is_empty() {
            return 1.0;
        }
        self.impacts
            .iter()
            .filter(|i| i.stranded_traffic_fraction == 0.0 && i.overloaded_links == 0)
            .count() as f64
            / self.impacts.len() as f64
    }
}

/// Analyzes every single-link failure of `net` in `ctx`.
///
/// Capacities are taken from the network as built (`O·w`); with `O = 1`
/// any reroute overloads something, so provision with
/// [`cold_cost::CostParams::with_overprovision`] for meaningful headroom
/// numbers.
pub fn single_link_failures(net: &Network, ctx: &Context) -> FailureReport {
    let n = net.n();
    assert_eq!(ctx.n(), n, "network and context disagree on PoP count");
    let dist = ctx.distance_fn();
    let total_traffic = ctx.traffic.total();
    // Baseline route lengths for stretch.
    let base = route_traffic(&net.graph(), dist, ctx.traffic_fn())
        .expect("synthesized networks are connected");
    let base_len: Vec<Vec<f64>> = (0..n).map(|s| base.trees[s].dist.clone()).collect();

    // Installed capacity by normalized endpoint pair, built once. The
    // routing layer does not promise `u < v` edge order, so keying on the
    // raw `(l.u, l.v)` tuple made reversed-order lookups miss and read as
    // zero capacity (→ spurious infinite utilization).
    let capacity: std::collections::HashMap<(usize, usize), f64> =
        net.links.iter().map(|l| ((l.u.min(l.v), l.u.max(l.v)), l.capacity)).collect();

    let mut impacts = Vec::with_capacity(net.links.len());
    for failed in &net.links {
        let mut topo = net.topology.clone();
        topo.set_edge(failed.u, failed.v, false);
        let g = topo.to_graph();
        // Route only the demands that still have a path; measure the rest.
        let comps = cold_graph::components::connected_components(&g);
        let survives = |s: usize, t: usize| comps.label[s] == comps.label[t];
        let mut stranded = 0.0f64;
        for s in 0..n {
            for t in 0..n {
                if s != t && !survives(s, t) {
                    stranded += ctx.traffic.demand(s, t);
                }
            }
        }
        let routed =
            route_traffic(
                &g,
                dist,
                |s, t| {
                    if survives(s, t) {
                        ctx.traffic.demand(s, t)
                    } else {
                        0.0
                    }
                },
            )
            .expect("stranded demands zeroed, remaining pairs routable");
        // Installed capacity lookup for surviving links.
        let mut max_util = 0.0f64;
        let mut overloaded = 0usize;
        for (i, &(u, v)) in routed.edges.iter().enumerate() {
            let installed = capacity.get(&(u.min(v), u.max(v))).copied().unwrap_or(0.0);
            if installed > 0.0 {
                let util = routed.load[i] / installed;
                max_util = max_util.max(util);
                if util > 1.0 + 1e-9 {
                    overloaded += 1;
                }
            } else if routed.load[i] > 0.0 {
                // Link carried nothing before (zero capacity) but does now.
                overloaded += 1;
                max_util = f64::INFINITY;
            }
        }
        // Stretch over surviving demands.
        let mut stretch_sum = 0.0f64;
        let mut stretch_count = 0usize;
        for (s, base_row) in base_len.iter().enumerate() {
            for (t, &before) in base_row.iter().enumerate() {
                if s != t && survives(s, t) && ctx.traffic.demand(s, t) > 0.0 {
                    let after = routed.trees[s].dist[t];
                    if before > 0.0 {
                        stretch_sum += after / before;
                        stretch_count += 1;
                    }
                }
            }
        }
        impacts.push(LinkFailureImpact {
            link: (failed.u, failed.v),
            stranded_traffic_fraction: if total_traffic > 0.0 {
                stranded / total_traffic
            } else {
                0.0
            },
            max_utilization: max_util,
            overloaded_links: overloaded,
            mean_stretch: if stretch_count > 0 { stretch_sum / stretch_count as f64 } else { 1.0 },
        });
    }
    FailureReport { impacts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_context::{GravityModel, Point, PopulationKind};
    use cold_cost::{CostParams, Network};
    use cold_graph::AdjacencyMatrix;

    fn square_ctx() -> Context {
        Context::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            PopulationKind::Constant { value: 1.0 },
            GravityModel::raw(),
            0,
        )
    }

    #[test]
    fn tree_failures_strand_traffic() {
        let ctx = square_ctx();
        let star = AdjacencyMatrix::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let net = Network::build(star, &ctx, CostParams::paper(1e-3, 0.0)).unwrap();
        let report = single_link_failures(&net, &ctx);
        assert_eq!(report.impacts.len(), 3);
        for i in &report.impacts {
            // Cutting a spoke strands one PoP: 2·3 of 12 ordered pairs.
            assert!((i.stranded_traffic_fraction - 0.5).abs() < 1e-9);
        }
        assert_eq!(report.survivable_link_fraction(), 0.0);
    }

    #[test]
    fn ring_failures_reroute_everything() {
        let ctx = square_ctx();
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        // Provision 4× headroom so reroutes fit.
        let params = CostParams::paper(1e-3, 0.0).with_overprovision(4.0);
        let net = Network::build(ring, &ctx, params).unwrap();
        let report = single_link_failures(&net, &ctx);
        for i in &report.impacts {
            assert_eq!(i.stranded_traffic_fraction, 0.0);
            assert_eq!(i.overloaded_links, 0, "4x headroom must absorb any single failure");
            assert!(i.max_utilization <= 1.0 + 1e-9);
            assert!(i.mean_stretch >= 1.0);
        }
        assert_eq!(report.survivable_link_fraction(), 1.0);
    }

    #[test]
    fn tight_provisioning_overloads_on_reroute() {
        let ctx = square_ctx();
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        // O = 1: every reroute must exceed some installed capacity.
        let net = Network::build(ring, &ctx, CostParams::paper(1e-3, 0.0)).unwrap();
        let report = single_link_failures(&net, &ctx);
        for i in &report.impacts {
            assert_eq!(i.stranded_traffic_fraction, 0.0, "ring survives any single cut");
            assert!(i.overloaded_links > 0, "O = 1 leaves no headroom");
            assert!(i.max_utilization > 1.0);
        }
    }

    #[test]
    fn stretch_reflects_detours() {
        let ctx = square_ctx();
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let net = Network::build(ring, &ctx, CostParams::paper(1e-3, 0.0)).unwrap();
        let report = single_link_failures(&net, &ctx);
        // Failing (0,1): the 0↔1 demand now takes the 3-hop way around
        // (length 3 vs 1) — mean stretch must be clearly above 1.
        let impact = report.impacts.iter().find(|i| i.link == (0, 1)).unwrap();
        assert!(impact.mean_stretch > 1.1, "stretch {}", impact.mean_stretch);
    }

    #[test]
    fn worst_link_identified() {
        let ctx = square_ctx();
        // Triangle + pendant: the pendant link is the clear worst.
        let topo = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let net = Network::build(topo, &ctx, CostParams::paper(1e-3, 0.0)).unwrap();
        let report = single_link_failures(&net, &ctx);
        let worst = report.worst().unwrap();
        assert_eq!(worst.link, (2, 3));
        assert!(worst.stranded_traffic_fraction > 0.0);
    }

    #[test]
    fn reversed_link_endpoints_still_find_installed_capacity() {
        // Regression: capacity lookup used to key on the raw `(l.u, l.v)`
        // tuple, so an endpoint-order mismatch with the routing layer read
        // as zero capacity and reported infinite utilization.
        let ctx = square_ctx();
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let params = CostParams::paper(1e-3, 0.0).with_overprovision(4.0);
        let mut net = Network::build(ring, &ctx, params).unwrap();
        let baseline = single_link_failures(&net, &ctx);
        // Flip every stored link's endpoint order; the analysis must be
        // insensitive to it.
        for l in &mut net.links {
            std::mem::swap(&mut l.u, &mut l.v);
        }
        let flipped = single_link_failures(&net, &ctx);
        assert_eq!(baseline.impacts.len(), flipped.impacts.len());
        for (b, f) in baseline.impacts.iter().zip(&flipped.impacts) {
            assert!(f.max_utilization.is_finite(), "reversed order read as zero capacity");
            assert_eq!(b.max_utilization, f.max_utilization);
            assert_eq!(b.overloaded_links, f.overloaded_links);
            assert_eq!(b.stranded_traffic_fraction, f.stranded_traffic_fraction);
        }
    }

    #[test]
    fn end_to_end_on_synthesized_network() {
        let r = crate::ColdConfig::quick(9, 4e-4, 10.0).synthesize(5);
        let report = single_link_failures(&r.network, &r.context);
        assert_eq!(report.impacts.len(), r.network.link_count());
        for i in &report.impacts {
            assert!((0.0..=1.0).contains(&i.stranded_traffic_fraction));
            assert!(i.mean_stretch >= 1.0 - 1e-9);
        }
    }
}
