//! `journal-check` CLI coverage for the distributed-protocol event
//! kinds: causality rules (leases resolve, lost workers joined first,
//! orphaned leases recover later) must pass valid journals and fail
//! corrupted ones with a pointed message.

use cold_obs::{
    Event, EvolutionStep, JobSubmitted, TrialLeased, TrialMigrated, WarmStart, WorkerJoined,
    WorkerLost,
};
use std::path::PathBuf;
use std::process::Output;

fn write_journal(name: &str, events: &[Event]) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("journal-check-cli-{}-{name}.jsonl", std::process::id()));
    let lines: Vec<String> = events
        .iter()
        .map(|e| serde_json::to_string(&e.to_value()).expect("event serializes"))
        .collect();
    std::fs::write(&path, lines.join("\n") + "\n").expect("write journal");
    path
}

fn check(path: &PathBuf, args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_journal-check"))
        .args(args)
        .arg(path)
        .output()
        .expect("spawn journal-check")
}

fn joined(worker: &str) -> Event {
    Event::WorkerJoined(WorkerJoined { worker: worker.into() })
}

fn lost(worker: &str, leases: usize) -> Event {
    Event::WorkerLost(WorkerLost { worker: worker.into(), leases })
}

fn leased(trial: usize, lease: &str, worker: &str, attempt: usize) -> Event {
    Event::TrialLeased(TrialLeased {
        id: "aaaaaaaaaaaaaaaa".into(),
        trial,
        lease: lease.into(),
        worker: worker.into(),
        attempt,
    })
}

fn migrated(trial: usize, lease: &str, from: &str, to: &str, generation: usize) -> Event {
    Event::TrialMigrated(TrialMigrated {
        id: "aaaaaaaaaaaaaaaa".into(),
        trial,
        lease: lease.into(),
        from_worker: from.into(),
        to_worker: to.into(),
        resumed_generation: generation,
    })
}

#[test]
fn valid_distributed_sequence_passes() {
    let path = write_journal(
        "valid",
        &[
            joined("a"),
            joined("b"),
            leased(0, "0123456789abcdef", "a", 1),
            lost("a", 1),
            leased(0, "fedcba9876543210", "b", 2),
            migrated(0, "fedcba9876543210", "a", "b", 3),
        ],
    );
    let out = check(&path, &[]);
    assert!(
        out.status.success(),
        "valid journal rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
    let _ = std::fs::remove_file(&path);
}

/// Regression: a worker that is evicted and re-registers may reacquire
/// its own trial — a self-migration is legal, not a journal defect.
#[test]
fn same_worker_remigration_is_legal() {
    let path = write_journal(
        "selfmigrate",
        &[
            joined("a"),
            leased(0, "0123456789abcdef", "a", 1),
            lost("a", 1),
            joined("a"),
            leased(0, "fedcba9876543210", "a", 2),
            migrated(0, "fedcba9876543210", "a", "a", 2),
        ],
    );
    let out = check(&path, &[]);
    assert!(
        out.status.success(),
        "self-migration rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn lost_worker_that_never_joined_fails() {
    let path = write_journal("ghost", &[joined("a"), lost("phantom", 0)]);
    let out = check(&path, &[]);
    assert!(!out.status.success(), "ghost eviction must fail validation");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("never seen joining"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn migration_with_unknown_lease_fails() {
    let path = write_journal(
        "unknownlease",
        &[
            joined("a"),
            joined("b"),
            leased(0, "0123456789abcdef", "a", 1),
            migrated(0, "00000000deadbeef", "a", "b", 1),
        ],
    );
    let out = check(&path, &[]);
    assert!(!out.status.success(), "unresolvable lease must fail validation");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not resolve"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn orphaning_loss_without_recovery_fails() {
    let path = write_journal(
        "orphan",
        &[joined("a"), leased(0, "0123456789abcdef", "a", 1), lost("a", 1)],
    );
    let out = check(&path, &[]);
    assert!(!out.status.success(), "orphaned leases with no recovery must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("orphaned leases"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

fn submitted(id: &str) -> Event {
    Event::JobSubmitted(JobSubmitted { id: id.into(), n: 12, count: 1, seed: 7 })
}

fn warm(id: &str, parent: &str) -> Event {
    Event::WarmStart(WarmStart { id: id.into(), parent: parent.into(), seeds: 40 })
}

#[test]
fn warm_start_with_seen_parent_passes() {
    let path = write_journal(
        "warmok",
        &[
            submitted("aaaaaaaaaaaaaaaa"),
            submitted("bbbbbbbbbbbbbbbb"),
            warm("bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa"),
        ],
    );
    let out = check(&path, &[]);
    assert!(
        out.status.success(),
        "valid warm start rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 warm starts"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_start_with_unseen_parent_fails() {
    let path = write_journal(
        "warmghost",
        &[submitted("bbbbbbbbbbbbbbbb"), warm("bbbbbbbbbbbbbbbb", "aaaaaaaaaaaaaaaa")],
    );
    let out = check(&path, &[]);
    assert!(!out.status.success(), "unseen warm-start parent must fail validation");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not appear earlier"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_start_chains_through_evolution_steps() {
    // An evolution_step introduces its run id, so a later warm_start may
    // chain from it; a second warm_start may chain from the first's id.
    let path = write_journal(
        "warmchain",
        &[
            Event::EvolutionStep(EvolutionStep {
                run: "cccccccccccccccc".into(),
                step: 0,
                kind: "base".into(),
                n: 12,
                best_cost: 100.0,
                generations: 40,
            }),
            warm("dddddddddddddddd", "cccccccccccccccc"),
            warm("eeeeeeeeeeeeeeee", "dddddddddddddddd"),
        ],
    );
    let out = check(&path, &[]);
    assert!(
        out.status.success(),
        "warm-start chain rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn evolution_step_with_unknown_kind_fails() {
    let path = write_journal(
        "badstep",
        &[Event::EvolutionStep(EvolutionStep {
            run: "cccccccccccccccc".into(),
            step: 1,
            kind: "teleport_pop".into(),
            n: 12,
            best_cost: 100.0,
            generations: 40,
        })],
    );
    let out = check(&path, &[]);
    assert!(!out.status.success(), "unknown perturbation kind must fail validation");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown perturbation kind"),
        "unexpected stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_lease_goodbye_needs_no_recovery() {
    let path = write_journal("cleanbye", &[joined("a"), lost("a", 0)]);
    let out = check(&path, &[]);
    assert!(
        out.status.success(),
        "clean goodbye rejected: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}
