//! Figures 5–7: tunability of average node degree (Fig 5), diameter
//! (Fig 6) and global clustering coefficient (Fig 7) with respect to `k2`
//! for `k3 ∈ {0, 10, 100, 1000}`; `n = 30`, `k0 = 10`, `k1 = 1`, 200
//! simulations per point in the paper.
//!
//! All three figures come from the *same* sweep (each synthesized network
//! yields all three statistics), so running any of the fig5/fig6/fig7
//! binaries produces all three JSON documents.

use crate::{fmt, print_table, ExpOptions};
use cold::sweep::{log_space, SweepCell, SweepPlan, SweepPoint};
use cold::ColdConfig;
use serde_json::json;

/// The statistics the three figures plot.
pub const STATS: [(&str, &str); 3] =
    [("average_degree", "fig5"), ("diameter", "fig6"), ("global_clustering", "fig7")];

/// The paper's `k3` series.
pub const K3S: [f64; 4] = [0.0, 10.0, 100.0, 1000.0];

/// Runs the shared sweep and returns one JSON document per figure,
/// in [`STATS`] order.
pub fn run(opts: &ExpOptions) -> Vec<(String, serde_json::Value)> {
    let n = if opts.full { 30 } else { 12 };
    let trials = opts.trials(6, 200);
    let k2s = log_space(1e-4, 1.6e-3, if opts.full { 7 } else { 4 });
    let mut points = Vec::new();
    for &k3 in &K3S {
        for &k2 in &k2s {
            points.push(SweepPoint { k2, k3 });
        }
    }
    let plan = SweepPlan {
        base: ColdConfig { ga: opts.ga_settings(), ..ColdConfig::paper(n, 1e-4, 0.0) },
        points,
        trials,
        stats: STATS.iter().map(|(s, _)| s.to_string()).collect(),
        seed: opts.seed,
        confidence: 0.95,
    };
    let cells = plan.run();

    let mut out = Vec::new();
    for &(stat, fig) in &STATS {
        let mut rows = Vec::new();
        for &k2 in &k2s {
            let mut row = vec![fmt(k2)];
            for &k3 in &K3S {
                let cell = find(&cells, k2, k3);
                let ci = cell.stat(stat).expect("stat present");
                row.push(format!("{}±{}", fmt(ci.mean), fmt((ci.hi - ci.lo) / 2.0)));
            }
            rows.push(row);
        }
        print_table(
            &format!("{fig}: {stat} vs k2 (n = {n}, {trials} trials/point)"),
            &["k2", "k3=0", "k3=10", "k3=100", "k3=1000"],
            &rows,
        );
        let doc = json!({
            "experiment": fig,
            "stat": stat,
            "n": n,
            "trials": trials,
            "k2": k2s,
            "k3": K3S,
            "cells": cells.iter().map(|c| json!({
                "k2": c.point.k2, "k3": c.point.k3,
                "mean": c.stat(stat).unwrap().mean,
                "lo": c.stat(stat).unwrap().lo,
                "hi": c.stat(stat).unwrap().hi,
            })).collect::<Vec<_>>(),
        });
        out.push((fig.to_string(), doc));
    }
    out
}

fn find(cells: &[SweepCell], k2: f64, k3: f64) -> &SweepCell {
    cells
        .iter()
        .find(|c| (c.point.k2 - k2).abs() < 1e-15 && (c.point.k3 - k3).abs() < 1e-15)
        .expect("cell exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_increases_with_k2_and_decreases_with_k3() {
        let opts = ExpOptions { seed: 5, trials_override: Some(3), ..Default::default() };
        let docs = run(&opts);
        let fig5 = &docs[0].1;
        let cells = fig5["cells"].as_array().unwrap();
        let get = |k2: f64, k3: f64| -> f64 {
            cells
                .iter()
                .find(|c| {
                    (c["k2"].as_f64().unwrap() - k2).abs() < 1e-12
                        && (c["k3"].as_f64().unwrap() - k3).abs() < 1e-12
                })
                .unwrap()["mean"]
                .as_f64()
                .unwrap()
        };
        let k2s: Vec<f64> =
            fig5["k2"].as_array().unwrap().iter().map(|x| x.as_f64().unwrap()).collect();
        // Fig 5's two trends at the grid extremes.
        assert!(
            get(*k2s.last().unwrap(), 0.0) >= get(k2s[0], 0.0),
            "average degree should rise with k2"
        );
        assert!(
            get(k2s[0], 1000.0) <= get(k2s[0], 0.0) + 0.3,
            "average degree should fall (or stay) as k3 rises"
        );
    }
}
