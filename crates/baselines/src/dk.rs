//! dK-series analysis and generation (§2, Figs 1–2; Mahadevan et al.).
//!
//! The dK-*distribution* computation itself lives in
//! [`cold_graph::subgraphs`]; this module adds the generation side:
//!
//! - [`generate_1k`]: a uniform-ish sample with a prescribed degree
//!   sequence (Havel–Hakimi construction + randomizing double-edge swaps);
//! - [`double_edge_swap`]: the degree-preserving rewiring primitive;
//! - [`joint_degree_matrix`] / [`generate_2k`]: the 2K level — the compact
//!   joint-degree form and a targeted JDM-preserving rewiring chain;
//! - [`sample_same_dk`]: MCMC over degree-preserving swaps that only
//!   accepts moves keeping the dK-distribution equal to the input's — the
//!   procedure behind Fig 2(c). For `d = 3` on small engineered graphs the
//!   chain barely moves: "the only possible 3K graph that can match the
//!   input is isomorphic to the input itself", which
//!   [`cold_graph::canonical::are_isomorphic`] then verifies.
//! - [`parameter_count_series`]: the Fig 1 curve — number of distinct
//!   dK entries versus graph size for `d = 2, 3, 4`.

use cold_graph::subgraphs::{dk_distribution, dk_parameter_count};
use cold_graph::AdjacencyMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Whether `seq` is graphical (Erdős–Gallai).
pub fn is_graphical(seq: &[usize]) -> bool {
    let n = seq.len();
    let mut d: Vec<usize> = seq.to_vec();
    d.sort_unstable_by(|a, b| b.cmp(a));
    if d.iter().sum::<usize>() % 2 != 0 {
        return false;
    }
    if d.first().is_some_and(|&x| x >= n) {
        return false;
    }
    let sum: Vec<usize> = d
        .iter()
        .scan(0usize, |acc, &x| {
            *acc += x;
            Some(*acc)
        })
        .collect();
    for k in 1..=n {
        let lhs = sum[k - 1];
        let mut rhs = k * (k - 1);
        for &di in &d[k..] {
            rhs += di.min(k);
        }
        if lhs > rhs {
            return false;
        }
    }
    true
}

/// Builds *some* simple graph with the given degree sequence
/// (Havel–Hakimi), then applies `randomize_swaps` random double-edge swaps
/// to decorrelate from the deterministic construction.
///
/// Returns `None` if the sequence is not graphical.
pub fn generate_1k(
    seq: &[usize],
    randomize_swaps: usize,
    rng: &mut StdRng,
) -> Option<AdjacencyMatrix> {
    if !is_graphical(seq) {
        return None;
    }
    let n = seq.len();
    let mut m = AdjacencyMatrix::empty(n);
    let mut residual: Vec<(usize, usize)> =
        seq.iter().copied().enumerate().map(|(v, d)| (d, v)).collect();
    loop {
        residual.sort_unstable_by(|a, b| b.cmp(a));
        let (d, v) = residual[0];
        if d == 0 {
            break;
        }
        if d >= residual.len() {
            return None; // Defensive; cannot happen for graphical input.
        }
        residual[0].0 = 0;
        for slot in residual.iter_mut().skip(1).take(d) {
            if slot.0 == 0 {
                return None;
            }
            slot.0 -= 1;
            m.set_edge(v, slot.1, true);
        }
    }
    for _ in 0..randomize_swaps {
        double_edge_swap(&mut m, rng);
    }
    Some(m)
}

/// Attempts one degree-preserving double-edge swap: picks two disjoint
/// edges `(a, b)`, `(c, d)` and rewires to `(a, d)`, `(c, b)` when that
/// creates no self-loop or multi-edge. Returns whether a swap happened.
pub fn double_edge_swap(m: &mut AdjacencyMatrix, rng: &mut StdRng) -> bool {
    let edges: Vec<(usize, usize)> = m.edges().collect();
    if edges.len() < 2 {
        return false;
    }
    let i = rng.gen_range(0..edges.len());
    let j = rng.gen_range(0..edges.len());
    if i == j {
        return false;
    }
    let (a, b) = edges[i];
    let (c, d) = edges[j];
    // Orient the second edge randomly to cover both rewirings.
    let (c, d) = if rng.gen_range(0.0..1.0) < 0.5 { (c, d) } else { (d, c) };
    if a == c || a == d || b == c || b == d {
        return false;
    }
    if m.has_edge(a, d) || m.has_edge(c, b) {
        return false;
    }
    m.set_edge(a, b, false);
    m.set_edge(c, d, false);
    m.set_edge(a, d, true);
    m.set_edge(c, b, true);
    true
}

/// The joint degree matrix (2K-distribution in its compact form):
/// `jdm[(a, b)]` with `a ≤ b` counts edges whose endpoint degrees are
/// `a` and `b`.
pub fn joint_degree_matrix(
    m: &AdjacencyMatrix,
) -> std::collections::BTreeMap<(usize, usize), usize> {
    let degs = m.degrees();
    let mut jdm = std::collections::BTreeMap::new();
    for (u, v) in m.edges() {
        let (a, b) = if degs[u] <= degs[v] { (degs[u], degs[v]) } else { (degs[v], degs[u]) };
        *jdm.entry((a, b)).or_insert(0) += 1;
    }
    jdm
}

/// One 2K-preserving rewiring attempt: a double-edge swap restricted to
/// edge pairs whose swapped endpoints have equal degree, which provably
/// preserves the joint degree matrix. Returns whether a swap happened.
///
/// This is the targeted generator for the 2K level — much faster than the
/// generic [`sample_same_dk`] check-and-revert chain because no
/// distribution needs recomputing.
pub fn two_k_preserving_swap(m: &mut AdjacencyMatrix, rng: &mut StdRng) -> bool {
    let edges: Vec<(usize, usize)> = m.edges().collect();
    if edges.len() < 2 {
        return false;
    }
    let degs = m.degrees();
    let i = rng.gen_range(0..edges.len());
    let j = rng.gen_range(0..edges.len());
    if i == j {
        return false;
    }
    let (a, b) = edges[i];
    let (c, d) = edges[j];
    let (c, d) = if rng.gen_range(0.0..1.0) < 0.5 { (c, d) } else { (d, c) };
    if a == c || a == d || b == c || b == d {
        return false;
    }
    // Swapping (a,b),(c,d) → (a,d),(c,b) preserves the JDM iff the
    // exchanged endpoints have equal degree.
    if degs[b] != degs[d] {
        return false;
    }
    if m.has_edge(a, d) || m.has_edge(c, b) {
        return false;
    }
    m.set_edge(a, b, false);
    m.set_edge(c, d, false);
    m.set_edge(a, d, true);
    m.set_edge(c, b, true);
    true
}

/// Samples a graph with the same 2K-distribution as `input` by running
/// `attempts` 2K-preserving swaps. Returns the final graph and the number
/// of successful swaps.
pub fn generate_2k(
    input: &AdjacencyMatrix,
    attempts: usize,
    rng: &mut StdRng,
) -> (AdjacencyMatrix, usize) {
    let mut g = input.clone();
    let mut accepted = 0usize;
    for _ in 0..attempts {
        if two_k_preserving_swap(&mut g, rng) {
            accepted += 1;
        }
    }
    (g, accepted)
}

/// MCMC sampler over graphs with the *same dK-distribution* as `input`:
/// proposes degree-preserving double-edge swaps and reverts any swap that
/// changes the dK-distribution (for the given `d`). Runs `proposals`
/// proposals and returns the final state plus the number of accepted moves.
///
/// For `d = 1` every successful swap is accepted (swaps preserve degrees);
/// as `d` grows, acceptance collapses — the over-constraining effect §2
/// demonstrates with Fig 2.
pub fn sample_same_dk(
    input: &AdjacencyMatrix,
    d: usize,
    proposals: usize,
    rng: &mut StdRng,
) -> (AdjacencyMatrix, usize) {
    let target = dk_distribution(&input.to_graph(), d);
    let mut current = input.clone();
    let mut accepted = 0usize;
    for _ in 0..proposals {
        let mut trial = current.clone();
        if !double_edge_swap(&mut trial, rng) {
            continue;
        }
        if d <= 1 || dk_distribution(&trial.to_graph(), d) == target {
            current = trial;
            accepted += 1;
        }
    }
    (current, accepted)
}

/// The Fig 1 series: for each `n` in `sizes`, generates a connected sample
/// graph with `make_graph(n)` and counts its distinct dK entries for every
/// `d` in `ds`. Returns rows `(n, counts-aligned-with-ds)`.
pub fn parameter_count_series(
    sizes: &[usize],
    ds: &[usize],
    mut make_graph: impl FnMut(usize) -> AdjacencyMatrix,
) -> Vec<(usize, Vec<usize>)> {
    sizes
        .iter()
        .map(|&n| {
            let g = make_graph(n).to_graph();
            let counts = ds.iter().map(|&d| dk_parameter_count(&g, d)).collect();
            (n, counts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_graph::canonical::are_isomorphic;
    use rand::SeedableRng;

    #[test]
    fn erdos_gallai_classifies_sequences() {
        assert!(is_graphical(&[2, 2, 2])); // triangle
        assert!(is_graphical(&[1, 1])); // edge
        assert!(is_graphical(&[3, 3, 3, 3])); // K4
        assert!(!is_graphical(&[1])); // odd sum
        assert!(!is_graphical(&[3, 1, 1])); // too demanding
        assert!(!is_graphical(&[4, 1, 1, 1])); // max degree >= n
        assert!(is_graphical(&[0, 0, 0]));
    }

    #[test]
    fn generate_1k_hits_degree_sequence() {
        let mut rng = StdRng::seed_from_u64(1);
        let seq = vec![3, 2, 2, 2, 1];
        let g = generate_1k(&seq, 50, &mut rng).expect("graphical");
        let mut got = g.degrees();
        let mut want = seq.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn generate_1k_rejects_nongraphical() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(generate_1k(&[3, 1, 1], 10, &mut rng).is_none());
    }

    #[test]
    fn swaps_preserve_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = AdjacencyMatrix::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
        )
        .unwrap();
        let before = {
            let mut d = m.degrees();
            d.sort_unstable();
            d
        };
        for _ in 0..200 {
            double_edge_swap(&mut m, &mut rng);
        }
        let after = {
            let mut d = m.degrees();
            d.sort_unstable();
            d
        };
        assert_eq!(before, after);
    }

    #[test]
    fn same_dk_sampler_preserves_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = AdjacencyMatrix::from_edges(
            7,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (0, 3), (1, 4)],
        )
        .unwrap();
        for d in [1usize, 2, 3] {
            let (out, _) = sample_same_dk(&input, d, 100, &mut rng);
            assert!(cold_graph::subgraphs::same_dk_distribution(
                &input.to_graph(),
                &out.to_graph(),
                d
            ));
        }
    }

    #[test]
    fn three_k_overconstrains_small_rigid_graphs() {
        // A ring: every 3K-preserving state of C6 is isomorphic to C6
        // (the paper's clique/ring example).
        let ring =
            AdjacencyMatrix::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let (out, _) = sample_same_dk(&ring, 3, 300, &mut rng);
        assert!(are_isomorphic(&ring, &out));
    }

    #[test]
    fn one_k_moves_more_than_three_k() {
        let input = AdjacencyMatrix::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 6), (6, 7), (7, 4), (2, 5)],
        )
        .unwrap();
        let (_, acc1) = sample_same_dk(&input, 1, 200, &mut StdRng::seed_from_u64(6));
        let (_, acc3) = sample_same_dk(&input, 3, 200, &mut StdRng::seed_from_u64(6));
        assert!(acc1 > acc3, "1K accepted {acc1} <= 3K accepted {acc3}");
    }

    #[test]
    fn jdm_counts_every_edge_once() {
        let m = AdjacencyMatrix::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]).unwrap();
        let jdm = joint_degree_matrix(&m);
        let total: usize = jdm.values().sum();
        assert_eq!(total, 4);
        // Degrees: [3,1,1,2,1]. Edge classes: (1,3)×2, (2,3)×1, (1,2)×1.
        assert_eq!(jdm[&(1, 3)], 2);
        assert_eq!(jdm[&(2, 3)], 1);
        assert_eq!(jdm[&(1, 2)], 1);
    }

    #[test]
    fn two_k_swaps_preserve_the_jdm() {
        let mut rng = StdRng::seed_from_u64(8);
        let input = AdjacencyMatrix::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 0),
                (0, 5),
                (2, 7),
            ],
        )
        .unwrap();
        let target = joint_degree_matrix(&input);
        let (out, accepted) = generate_2k(&input, 500, &mut rng);
        assert_eq!(joint_degree_matrix(&out), target);
        assert!(accepted > 0, "the chain should move on this symmetric input");
        assert!(cold_graph::subgraphs::same_dk_distribution(&input.to_graph(), &out.to_graph(), 2));
    }

    #[test]
    fn two_k_chain_moves_at_least_as_freely_as_three_k() {
        let input = AdjacencyMatrix::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 6), (6, 7), (7, 4), (2, 5)],
        )
        .unwrap();
        let (_, acc2) = generate_2k(&input, 300, &mut StdRng::seed_from_u64(9));
        let (_, acc3) = sample_same_dk(&input, 3, 300, &mut StdRng::seed_from_u64(9));
        assert!(acc2 >= acc3, "2K moves {acc2} < 3K moves {acc3}");
    }

    #[test]
    fn parameter_counts_grow_with_d() {
        let mut rng = StdRng::seed_from_u64(7);
        let rows = parameter_count_series(&[12, 16], &[2, 3], |n| {
            // Connected-ish ER sample; retry until connected.
            loop {
                let g = crate::erdos_renyi::gnp(n, 3.0 / n as f64, &mut rng);
                if cold_graph::components::matrix_is_connected(&g) {
                    return g;
                }
            }
        });
        for (n, counts) in rows {
            assert!(counts[1] >= counts[0], "n={n}: d=3 count below d=2 count");
        }
    }
}
