//! Crash-safe campaign checkpoints for ensemble synthesis.
//!
//! A *campaign* is the serial trial loop `cold-gen` runs: `count` trials
//! with per-trial seeds `derive_seed(master_seed, i)`. The checkpoint
//! design exploits that everything a trial produces is a pure function of
//! `(config, seed)`: a [`TrialRecord`] stores only the small deterministic
//! outputs (topology edges, history, counters) and
//! [`TrialRecord::rebuild`] reconstructs the full [`SynthesisResult`] —
//! context, capacitated network, statistics — by re-deriving them, which
//! costs milliseconds instead of a GA run.
//!
//! Snapshots are single JSON documents written atomically (temp file +
//! rename in the destination directory), so a crash mid-write leaves the
//! previous snapshot intact, never a truncated one. See DESIGN.md §10.

use crate::error::ColdError;
use crate::synthesizer::{ColdConfig, ProgressSink, SynthesisResult, RETRY_SALT};
use cold_context::rng::derive_seed;
use cold_cost::Network;
use cold_graph::AdjacencyMatrix;
use serde::{Deserialize as _, Serialize as _};
use serde_json::{json, Value};
use std::path::Path;

/// The deterministic outputs of one completed trial — everything needed
/// to reproduce its [`SynthesisResult`] without re-running the GA.
///
/// `eval_seconds` inside [`eval_stats`](Self::eval_stats) is the one
/// wall-clock field: it round-trips exactly through the checkpoint (so a
/// resumed campaign reports the time the original leg actually spent) but
/// is exempt from bit-identity comparisons against an uninterrupted run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Zero-based trial index within the campaign.
    pub trial: usize,
    /// The per-trial seed (`derive_seed(master_seed, trial)`).
    pub seed: u64,
    /// Node count of the synthesized topology.
    pub n: usize,
    /// Edges of the best topology, ascending.
    pub edges: Vec<(usize, usize)>,
    /// Best cost per generation.
    pub best_cost_history: Vec<f64>,
    /// Final GA population costs, ascending.
    pub final_population_costs: Vec<f64>,
    /// `(heuristic name, cost)` pairs (initialized mode only).
    pub heuristic_costs: Vec<(String, f64)>,
    /// Objective evaluations requested.
    pub evaluations: usize,
    /// Fitness-cache counters and wall-clock evaluation time.
    pub eval_stats: cold_ga::EvalStats,
    /// Fraction of offspring needing connectivity repair.
    pub repair_rate: f64,
    /// Generations actually run.
    pub generations_run: usize,
    /// Why the trial's GA run returned (completion, early stop, or the
    /// stall guard), serialized as its wire name.
    pub stop_reason: cold_ga::StopReason,
}

impl TrialRecord {
    /// Distills a completed trial into its checkpointable form.
    pub fn from_result(trial: usize, seed: u64, r: &SynthesisResult) -> Self {
        Self {
            trial,
            seed,
            n: r.network.topology.n(),
            edges: r.network.topology.edges().collect(),
            best_cost_history: r.best_cost_history.clone(),
            final_population_costs: r.final_population_costs.clone(),
            heuristic_costs: r.heuristic_costs.clone(),
            evaluations: r.evaluations,
            eval_stats: r.eval_stats,
            repair_rate: r.repair_rate,
            generations_run: r.generations_run,
            stop_reason: r.stop_reason,
        }
    }

    /// Reconstructs the full [`SynthesisResult`] by re-deriving the
    /// deterministic parts: the context is regenerated from the seed, the
    /// network rebuilt (capacities, routes, cost) from the stored edges,
    /// and the statistics recomputed. Bit-identical to the original for
    /// every deterministic field.
    ///
    /// # Errors
    /// [`ColdError::Checkpoint`] when the stored topology does not fit
    /// the config (node-count mismatch, invalid edge, disconnected).
    pub fn rebuild(&self, config: &ColdConfig) -> Result<SynthesisResult, ColdError> {
        if self.n != config.context.n {
            return Err(ColdError::Checkpoint(format!(
                "trial {}: topology has {} nodes, config expects {}",
                self.trial, self.n, config.context.n
            )));
        }
        let topology = AdjacencyMatrix::from_edges(self.n, &self.edges).map_err(|e| {
            ColdError::Checkpoint(format!("trial {}: bad topology: {e:?}", self.trial))
        })?;
        let ctx = config.context.generate(derive_seed(self.seed, 0xC0));
        let network = Network::build(topology, &ctx, config.params).map_err(|e| {
            ColdError::Checkpoint(format!("trial {}: stored topology unusable: {e:?}", self.trial))
        })?;
        let stats = crate::stats::NetworkStats::compute(&network.graph())
            .expect("network built above is connected");
        Ok(SynthesisResult {
            journal_path: cold_obs::journal_path(),
            context: ctx,
            network,
            stats,
            best_cost_history: self.best_cost_history.clone(),
            final_population_costs: self.final_population_costs.clone(),
            heuristic_costs: self.heuristic_costs.clone(),
            evaluations: self.evaluations,
            eval_stats: self.eval_stats,
            repair_rate: self.repair_rate,
            generations_run: self.generations_run,
            stop_reason: self.stop_reason,
        })
    }

    /// The record's JSON object form — the same shape embedded in a
    /// [`CampaignCheckpoint`], public so the distributed protocol can
    /// ship single trial results over the wire.
    pub fn to_value(&self) -> Value {
        json!({
            "trial": self.trial,
            "seed": self.seed,
            "n": self.n,
            "edges": Value::Array(
                self.edges.iter().map(|&(u, v)| json!([u, v])).collect()
            ),
            "best_cost_history": Value::Array(
                self.best_cost_history.iter().map(|&h| json!(h)).collect()
            ),
            "final_population_costs": Value::Array(
                self.final_population_costs.iter().map(|&c| json!(c)).collect()
            ),
            "heuristic_costs": Value::Array(
                self.heuristic_costs
                    .iter()
                    .map(|(name, cost)| json!({ "name": name, "cost": *cost }))
                    .collect()
            ),
            "evaluations": self.evaluations,
            "eval_stats": {
                "requested": self.eval_stats.requested,
                "cache_hits": self.eval_stats.cache_hits,
                "cache_misses": self.eval_stats.cache_misses,
                "eval_seconds": self.eval_stats.eval_seconds,
                "delta_evals": self.eval_stats.delta_evals,
                "full_evals": self.eval_stats.full_evals,
            },
            "repair_rate": self.repair_rate,
            "generations_run": self.generations_run,
            "stop_reason": self.stop_reason.as_str(),
        })
    }

    /// Parses and schema-validates a record from its JSON object form.
    ///
    /// # Errors
    /// A human-readable message naming the first missing or mistyped
    /// field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let mut edges = Vec::new();
        for e in v.get("edges").and_then(Value::as_array).ok_or("trial: `edges` missing")? {
            let pair = e.as_array().filter(|p| p.len() == 2).ok_or("trial: edge is not a pair")?;
            let u = pair[0].as_u64().ok_or("trial: edge endpoint not an integer")? as usize;
            let w = pair[1].as_u64().ok_or("trial: edge endpoint not an integer")? as usize;
            edges.push((u, w));
        }
        let mut heuristic_costs = Vec::new();
        for h in v
            .get("heuristic_costs")
            .and_then(Value::as_array)
            .ok_or("trial: `heuristic_costs` missing")?
        {
            let name = h
                .get("name")
                .and_then(Value::as_str)
                .ok_or("trial: heuristic name missing")?
                .to_string();
            let cost =
                h.get("cost").and_then(Value::as_f64).ok_or("trial: heuristic cost missing")?;
            heuristic_costs.push((name, cost));
        }
        let es = v.get("eval_stats").ok_or("trial: `eval_stats` missing")?;
        Ok(Self {
            trial: usize_field(v, "trial")?,
            seed: v.get("seed").and_then(Value::as_u64).ok_or("trial: `seed` missing")?,
            n: usize_field(v, "n")?,
            edges,
            best_cost_history: f64_array(v, "best_cost_history")?,
            final_population_costs: f64_array(v, "final_population_costs")?,
            heuristic_costs,
            evaluations: usize_field(v, "evaluations")?,
            eval_stats: cold_ga::EvalStats {
                requested: usize_field(es, "requested")?,
                cache_hits: usize_field(es, "cache_hits")?,
                cache_misses: usize_field(es, "cache_misses")?,
                eval_seconds: f64_field(es, "eval_seconds")?,
                // Lenient: checkpoints written before the delta/full split
                // existed simply report zeros.
                delta_evals: es.get("delta_evals").and_then(Value::as_u64).unwrap_or(0) as usize,
                full_evals: es.get("full_evals").and_then(Value::as_u64).unwrap_or(0) as usize,
            },
            repair_rate: f64_field(v, "repair_rate")?,
            generations_run: usize_field(v, "generations_run")?,
            stop_reason: v
                .get("stop_reason")
                .and_then(Value::as_str)
                .and_then(cold_ga::StopReason::parse)
                .ok_or("trial: `stop_reason` missing or unknown")?,
        })
    }
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| format!("field `{key}` missing or not a nonnegative integer"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("field `{key}` missing or not a number"))
}

fn f64_array(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("field `{key}` missing or not an array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("`{key}` entry is not a number")))
        .collect()
}

/// A resumable snapshot of a serial synthesis campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// The configuration the campaign runs under. A resume validates this
    /// against the caller's config — silently continuing a campaign with
    /// different parameters would poison the ensemble.
    pub config: ColdConfig,
    /// Master seed; trial `i` runs with `derive_seed(master_seed, i)`.
    pub master_seed: u64,
    /// Total trials in the campaign.
    pub count: usize,
    /// Completed trials, a prefix `0..records.len()` of the campaign.
    pub records: Vec<TrialRecord>,
}

impl CampaignCheckpoint {
    /// Converts the snapshot into its JSON object form.
    pub fn to_value(&self) -> Value {
        json!({
            "kind": "cold-campaign-checkpoint",
            "version": 1u64,
            "config": self.config.to_json_value(),
            "master_seed": self.master_seed,
            "count": self.count,
            "records": Value::Array(self.records.iter().map(TrialRecord::to_value).collect()),
        })
    }

    /// Parses and schema-validates a snapshot.
    ///
    /// # Errors
    /// [`ColdError::Checkpoint`] describing the first violated rule.
    pub fn from_value(v: &Value) -> Result<Self, ColdError> {
        let fail = |why: String| ColdError::Checkpoint(why);
        match v.get("kind").and_then(Value::as_str) {
            Some("cold-campaign-checkpoint") => {}
            Some(other) => return Err(fail(format!("not a campaign checkpoint (kind `{other}`)"))),
            None => return Err(fail("not a campaign checkpoint (missing `kind`)".into())),
        }
        match v.get("version").and_then(Value::as_u64) {
            Some(1) => {}
            other => {
                return Err(fail(format!("unsupported campaign checkpoint version {other:?}")))
            }
        }
        let config = v
            .get("config")
            .and_then(ColdConfig::from_json_value)
            .ok_or_else(|| fail("field `config` missing or malformed".into()))?;
        let master_seed = v
            .get("master_seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| fail("field `master_seed` missing".into()))?;
        let count = usize_field(v, "count").map_err(fail)?;
        let mut records = Vec::new();
        for (i, r) in v
            .get("records")
            .and_then(Value::as_array)
            .ok_or_else(|| fail("field `records` missing or not an array".into()))?
            .iter()
            .enumerate()
        {
            let record = TrialRecord::from_value(r).map_err(fail)?;
            if record.trial != i {
                return Err(fail(format!(
                    "records must be the contiguous prefix 0..: slot {i} holds trial {}",
                    record.trial
                )));
            }
            records.push(record);
        }
        if records.len() > count {
            return Err(fail(format!("{} records exceed campaign size {count}", records.len())));
        }
        Ok(Self { config, master_seed, count, records })
    }

    /// Serializes the snapshot as one JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("Value serialization is infallible")
    }

    /// Parses a snapshot from JSON text.
    ///
    /// # Errors
    /// [`ColdError::Checkpoint`] for invalid JSON or schema violations.
    pub fn from_json(text: &str) -> Result<Self, ColdError> {
        let v: Value = serde_json::from_str(text)
            .map_err(|e| ColdError::Checkpoint(format!("invalid JSON: {e}")))?;
        Self::from_value(&v)
    }

    /// Writes the snapshot atomically: the document lands in a temp file
    /// next to `path`, then replaces it with one `rename`. A crash at any
    /// point leaves either the old snapshot or the new one — never a
    /// truncated hybrid.
    ///
    /// # Errors
    /// [`ColdError::Io`] naming `path` when the write or rename fails (or
    /// a `campaign.io_err` fault is armed and fires).
    pub fn save(&self, path: &Path) -> Result<(), ColdError> {
        let _timer = cold_obs::timer("core.checkpoint_save");
        if cold_fault::armed() && cold_fault::should_fire("campaign.io_err") {
            return Err(ColdError::Io(std::io::Error::other(format!(
                "{}: injected campaign checkpoint I/O failure",
                path.display()
            ))));
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json() + "\n").map_err(|e| {
            ColdError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", tmp.display())))
        })?;
        std::fs::rename(&tmp, path).map_err(|e| {
            ColdError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
        })?;
        Ok(())
    }

    /// Reads a snapshot back from disk.
    ///
    /// # Errors
    /// [`ColdError::Io`] when the file is unreadable, and
    /// [`ColdError::Checkpoint`] when its contents do not validate; both
    /// name `path`.
    pub fn load(path: &Path) -> Result<Self, ColdError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            ColdError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
        })?;
        Self::from_json(&text).map_err(|e| match e {
            ColdError::Checkpoint(why) => {
                ColdError::Checkpoint(format!("{}: {why}", path.display()))
            }
            other => other,
        })
    }

    /// Rejects a snapshot that belongs to a different campaign.
    ///
    /// # Errors
    /// [`ColdError::Checkpoint`] naming the first mismatching field.
    pub fn validate_against(
        &self,
        config: &ColdConfig,
        master_seed: u64,
        count: usize,
    ) -> Result<(), ColdError> {
        if self.config != *config {
            return Err(ColdError::Checkpoint(
                "snapshot config differs from requested config".into(),
            ));
        }
        if self.master_seed != master_seed {
            return Err(ColdError::Checkpoint(format!(
                "snapshot master seed {:#x} differs from requested {master_seed:#x}",
                self.master_seed
            )));
        }
        if self.count != count {
            return Err(ColdError::Checkpoint(format!(
                "snapshot campaign size {} differs from requested {count}",
                self.count
            )));
        }
        Ok(())
    }
}

/// Runs (or resumes) a serial checkpointed campaign.
///
/// Trials execute in index order with the same per-trial seeds as
/// [`ColdConfig::ensemble`]; after every `checkpoint_every`-th completed
/// trial a [`CampaignCheckpoint`] is written atomically to
/// `checkpoint_path` (and a `checkpoint` journal event emitted when
/// tracing is active). With `resume`, the snapshot's completed trials are
/// rebuilt instead of re-run, and execution continues with the first
/// missing trial — the returned results are bit-identical (modulo the
/// wall-clock `eval_seconds`) to an uninterrupted campaign, which the
/// workspace `checkpoint_resume` test pins.
///
/// `on_trial` fires once per result, in trial order, for both rebuilt and
/// freshly-run trials — CLI progress/export hooks go there. For fresh
/// trials it fires *after* the snapshot write, so a hook that kills the
/// process never loses the trial it just saw.
///
/// With `trial_deadline`, each fresh trial runs under the wall-clock
/// watchdog: an overrunning trial is abandoned, journaled as
/// `trial_deadline_exceeded` (when tracing is active), and aborts the
/// campaign with [`ColdError::DeadlineExceeded`] — the checkpoint on disk
/// still holds every completed trial, so the campaign resumes from there.
///
/// # Errors
/// Any [`ColdError`] from validation, trial synthesis, checkpoint
/// rebuilding, or snapshot I/O. Unlike the parallel ensemble there is no
/// in-loop retry: the checkpoint already bounds lost work, and the CLI
/// reports the failed trial with the snapshot path for a manual resume.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign(
    config: &ColdConfig,
    master_seed: u64,
    count: usize,
    checkpoint_every: usize,
    checkpoint_path: &Path,
    resume: Option<CampaignCheckpoint>,
    trial_deadline: Option<std::time::Duration>,
    on_trial: impl FnMut(usize, &SynthesisResult),
) -> Result<Vec<SynthesisResult>, ColdError> {
    run_campaign_controlled(
        config,
        master_seed,
        count,
        checkpoint_every,
        checkpoint_path,
        resume,
        trial_deadline,
        CampaignControl::default(),
        on_trial,
    )
}

/// Runtime control surface of [`run_campaign_controlled`] — everything a
/// long-lived driver (the `cold-serve` worker pool) layers on top of the
/// plain CLI campaign.
#[derive(Default)]
pub struct CampaignControl<'a> {
    /// Live per-generation progress callback, forwarded into each fresh
    /// trial's GA run (see [`ProgressSink`]). Rebuilt trials report no
    /// generations — they never re-run the GA.
    pub progress: Option<ProgressSink>,
    /// Graceful-drain flag, checked *between* trials: when set, the
    /// campaign snapshots its completed prefix and returns
    /// [`ColdError::Canceled`]. The trial in flight when the flag flips
    /// always runs to completion — cancellation never corrupts a trial.
    pub cancel: Option<&'a std::sync::atomic::AtomicBool>,
    /// Retry each failed trial once on the salted seed
    /// `derive_seed(derive_seed(master_seed, RETRY_SALT), trial)` — the
    /// exact derivation [`ColdConfig::synthesize_ensemble`] uses — before
    /// giving up. Failed attempts are journaled as `trial_failed`; the
    /// retry's seed is recorded in the trial's [`TrialRecord`], so
    /// checkpoints of retried campaigns resume correctly.
    pub retry_salted: bool,
}

/// [`run_campaign`] with a [`CampaignControl`]: live progress, graceful
/// cancellation, and ensemble-style salted retries. `cold-serve` runs
/// every job through this path; `run_campaign` itself delegates here
/// with the default (no-op) control, so the CLI behavior is unchanged.
///
/// # Errors
/// Everything [`run_campaign`] can return, plus [`ColdError::Canceled`]
/// when the control's cancel flag stops the campaign between trials.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_controlled(
    config: &ColdConfig,
    master_seed: u64,
    count: usize,
    checkpoint_every: usize,
    checkpoint_path: &Path,
    resume: Option<CampaignCheckpoint>,
    trial_deadline: Option<std::time::Duration>,
    control: CampaignControl<'_>,
    mut on_trial: impl FnMut(usize, &SynthesisResult),
) -> Result<Vec<SynthesisResult>, ColdError> {
    if checkpoint_every == 0 {
        return Err(ColdError::Checkpoint("checkpoint interval must be >= 1".into()));
    }
    // One campaign span per invocation: trial spans (and their GA
    // generations) nest under it in the trace tree.
    let _span = cold_obs::span("core.campaign");
    config.validate()?;
    let mut records: Vec<TrialRecord> = match resume {
        None => Vec::new(),
        Some(snapshot) => {
            snapshot.validate_against(config, master_seed, count)?;
            snapshot.records
        }
    };
    let mut results = Vec::with_capacity(count);
    for record in &records {
        let r = record.rebuild(config)?;
        on_trial(record.trial, &r);
        results.push(r);
    }
    let save_snapshot = |records: &Vec<TrialRecord>, completed: usize| -> Result<(), ColdError> {
        let snapshot =
            CampaignCheckpoint { config: *config, master_seed, count, records: records.clone() };
        snapshot.save(checkpoint_path)?;
        if cold_obs::is_enabled() {
            cold_obs::emit(&cold_obs::Event::Checkpoint(cold_obs::CheckpointEvent {
                path: checkpoint_path.display().to_string(),
                completed,
                total: count,
            }));
        }
        Ok(())
    };
    let canceled =
        || control.cancel.is_some_and(|flag| flag.load(std::sync::atomic::Ordering::SeqCst));
    for i in results.len()..count {
        if canceled() {
            // Drain: make the completed prefix durable even when the
            // cancel lands off the checkpoint cadence.
            if !records.is_empty() {
                save_snapshot(&records, results.len())?;
            }
            return Err(ColdError::Canceled { completed: results.len() });
        }
        let attempts: usize = if control.retry_salted { 2 } else { 1 };
        let mut trial_outcome: Option<(u64, SynthesisResult)> = None;
        let mut last_err: Option<ColdError> = None;
        for attempt in 1..=attempts {
            let seed = if attempt == 1 {
                derive_seed(master_seed, i as u64)
            } else {
                derive_seed(derive_seed(master_seed, RETRY_SALT), i as u64)
            };
            let outcome = match trial_deadline {
                None => config.try_synthesize_progress(seed, control.progress.clone()),
                Some(d) => {
                    crate::synthesizer::run_with_deadline(config, seed, d, control.progress.clone())
                }
            };
            match outcome {
                Ok(r) => {
                    trial_outcome = Some((seed, r));
                    break;
                }
                Err(e) => {
                    if cold_obs::is_enabled() {
                        if let ColdError::DeadlineExceeded { seconds } = &e {
                            cold_obs::emit(&cold_obs::Event::TrialDeadlineExceeded(
                                cold_obs::TrialDeadlineExceeded {
                                    trial: i,
                                    attempt,
                                    seed,
                                    seconds: *seconds,
                                },
                            ));
                        }
                        if control.retry_salted {
                            cold_obs::emit(&cold_obs::Event::TrialFailed(cold_obs::TrialFailed {
                                trial: i,
                                attempt,
                                seed,
                                error: e.to_string(),
                            }));
                        }
                    }
                    last_err = Some(e);
                }
            }
        }
        let Some((seed, r)) = trial_outcome else {
            return Err(last_err.expect("a failed trial always records its error"));
        };
        records.push(TrialRecord::from_result(i, seed, &r));
        let completed = i + 1;
        // Snapshot *before* the hook: a hook that aborts the process (the
        // CLI's --halt-after does exactly that) still leaves the trial it
        // just observed recoverable on disk.
        if completed % checkpoint_every == 0 && completed < count {
            save_snapshot(&records, completed)?;
        }
        on_trial(i, &r);
        results.push(r);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cold-campaign-{}-{name}.json", std::process::id()));
        p
    }

    fn assert_same_deterministic_fields(a: &SynthesisResult, b: &SynthesisResult) {
        assert_eq!(a.network.topology, b.network.topology);
        assert_eq!(a.context, b.context);
        assert_eq!(a.best_cost_history, b.best_cost_history);
        assert_eq!(a.final_population_costs, b.final_population_costs);
        assert_eq!(a.heuristic_costs, b.heuristic_costs);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.eval_stats.requested, b.eval_stats.requested);
        assert_eq!(a.eval_stats.cache_hits, b.eval_stats.cache_hits);
        assert_eq!(a.eval_stats.cache_misses, b.eval_stats.cache_misses);
        assert_eq!(a.repair_rate, b.repair_rate);
        assert_eq!(a.generations_run, b.generations_run);
        assert_eq!(a.stats, b.stats);
        assert!((a.network.total_cost() - b.network.total_cost()).abs() < 1e-12);
    }

    #[test]
    fn trial_record_rebuilds_bit_identically() {
        let cfg = ColdConfig::quick(8, 1e-4, 10.0);
        let seed = derive_seed(42, 0);
        let original = cfg.synthesize(seed);
        let record = TrialRecord::from_result(0, seed, &original);
        let rebuilt = record.rebuild(&cfg).expect("rebuild");
        assert_same_deterministic_fields(&original, &rebuilt);
        // The wall-clock field round-trips the *recorded* value exactly.
        assert_eq!(rebuilt.eval_stats.eval_seconds, original.eval_stats.eval_seconds);
    }

    #[test]
    fn campaign_checkpoint_round_trips_through_json() {
        let cfg = ColdConfig::quick(8, 1e-4, 10.0);
        let seed = derive_seed(7, 0);
        let r = cfg.synthesize(seed);
        let snapshot = CampaignCheckpoint {
            config: cfg,
            master_seed: 7,
            count: 3,
            records: vec![TrialRecord::from_result(0, seed, &r)],
        };
        let back = CampaignCheckpoint::from_json(&snapshot.to_json()).expect("round trip");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn corrupt_campaign_documents_are_rejected() {
        assert!(CampaignCheckpoint::from_json("").is_err());
        assert!(CampaignCheckpoint::from_json("{}").is_err());
        assert!(CampaignCheckpoint::from_json("{\"kind\":\"cold-ga-checkpoint\"}").is_err());
        let cfg = ColdConfig::quick(8, 1e-4, 10.0);
        let r = cfg.synthesize(derive_seed(7, 0));
        let good = CampaignCheckpoint {
            config: cfg,
            master_seed: 7,
            count: 2,
            records: vec![TrialRecord::from_result(0, derive_seed(7, 0), &r)],
        }
        .to_json();
        assert!(CampaignCheckpoint::from_json(&good[..good.len() / 2]).is_err(), "truncation");
        let tampered = good.replace("\"count\":2", "\"count\":0");
        assert!(CampaignCheckpoint::from_json(&tampered).is_err(), "records exceed count");
    }

    #[test]
    fn resume_validation_rejects_foreign_campaigns() {
        let cfg = ColdConfig::quick(8, 1e-4, 10.0);
        let snapshot =
            CampaignCheckpoint { config: cfg, master_seed: 5, count: 4, records: Vec::new() };
        assert!(snapshot.validate_against(&cfg, 5, 4).is_ok());
        assert!(snapshot.validate_against(&cfg, 6, 4).is_err(), "seed mismatch");
        assert!(snapshot.validate_against(&cfg, 5, 8).is_err(), "count mismatch");
        let other = ColdConfig::quick(9, 1e-4, 10.0);
        assert!(snapshot.validate_against(&other, 5, 4).is_err(), "config mismatch");
    }

    #[test]
    fn interrupted_campaign_resumes_bit_identically() {
        let cfg = ColdConfig::quick(7, 1e-4, 10.0);
        let path = tmp_path("resume");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference.
        let full = run_campaign(&cfg, 11, 4, 1, &path, None, None, |_, _| {}).expect("full run");
        let _ = std::fs::remove_file(&path);

        // First leg: simulate a crash by stopping after 2 trials via the
        // on_trial hook (panic caught here, as a kill would).
        let leg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(&cfg, 11, 4, 1, &path, None, None, |i, _| {
                if i == 1 {
                    panic!("simulated crash after trial 1");
                }
            })
        }));
        assert!(leg.is_err(), "first leg must die mid-campaign");
        let snapshot = CampaignCheckpoint::load(&path).expect("crash left a valid snapshot");
        // Snapshots are written before on_trial fires, so the crash in the
        // trial-1 hook still left trial 1 on disk.
        assert_eq!(snapshot.records.len(), 2, "both completed trials checkpointed");

        // Second leg: resume and complete.
        let resumed = run_campaign(&cfg, 11, 4, 1, &path, Some(snapshot), None, |_, _| {})
            .expect("resumed run");
        assert_eq!(resumed.len(), full.len());
        for (a, b) in full.iter().zip(&resumed) {
            assert_same_deterministic_fields(a, b);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_checkpoint_cadence_and_final_trial_skip() {
        let cfg = ColdConfig::quick(7, 1e-4, 10.0);
        let path = tmp_path("cadence");
        let _ = std::fs::remove_file(&path);
        let results = run_campaign(&cfg, 3, 4, 2, &path, None, None, |_, _| {}).expect("run");
        assert_eq!(results.len(), 4);
        // every=2, count=4: snapshot after trial 2 only (after trial 4 the
        // campaign is complete — nothing to resume).
        let snapshot = CampaignCheckpoint::load(&path).expect("snapshot written");
        assert_eq!(snapshot.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
