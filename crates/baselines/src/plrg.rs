//! Power-Law Random Graphs (Aiello–Chung–Lu) (§2, ref \[11\]).
//!
//! The PLRG "addresses the observed power-law node degree distribution of
//! networks in measurement studies" but, the paper argues, its parameters
//! "certainly aren't meaningful for generating the types of networks
//! considered here. PoPs do not 'attach' to other PoPs according to a
//! probability based on degree!"
//!
//! Implementation: the Chung–Lu expected-degree construction. Each node
//! gets a weight `w_v` drawn from a discrete power law with exponent `β`
//! (truncated to `[1, n−1]`); pair `(u, v)` is a link with probability
//! `min(1, w_u·w_v / Σw)`.

use cold_graph::AdjacencyMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// PLRG parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plrg {
    /// Power-law exponent `β > 1` of the degree distribution
    /// `P(k) ∝ k^{−β}`.
    pub beta: f64,
    /// Minimum expected degree (≥ 1).
    pub min_degree: usize,
}

impl Default for Plrg {
    fn default() -> Self {
        Self { beta: 2.5, min_degree: 1 }
    }
}

impl Plrg {
    /// Samples the power-law weights for `n` nodes by inverse-CDF of the
    /// (continuous) Pareto, truncated at `n − 1`.
    pub fn sample_weights(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        assert!(self.beta > 1.0, "beta must exceed 1");
        assert!(self.min_degree >= 1, "min_degree must be >= 1");
        let kmax = (n.saturating_sub(1)).max(1) as f64;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let w = self.min_degree as f64 * u.powf(-1.0 / (self.beta - 1.0));
                w.min(kmax)
            })
            .collect()
    }

    /// Samples a PLRG on `n` nodes.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> AdjacencyMatrix {
        let w = self.sample_weights(n, rng);
        let total: f64 = w.iter().sum();
        let mut m = AdjacencyMatrix::empty(n);
        if total <= 0.0 {
            return m;
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let p = (w[u] * w[v] / total).min(1.0);
                if rng.gen_range(0.0..1.0) < p {
                    m.set_edge(u, v, true);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_graph::metrics::cvnd;
    use rand::SeedableRng;

    #[test]
    fn weights_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Plrg::default().sample_weights(50, &mut rng);
        assert_eq!(w.len(), 50);
        assert!(w.iter().all(|&x| (1.0..=49.0).contains(&x)));
    }

    #[test]
    fn heavier_tail_with_smaller_beta() {
        let mut rng = StdRng::seed_from_u64(2);
        let light: f64 = Plrg { beta: 3.5, min_degree: 1 }
            .sample_weights(2000, &mut rng)
            .into_iter()
            .fold(0.0, f64::max);
        let heavy: f64 = Plrg { beta: 1.8, min_degree: 1 }
            .sample_weights(2000, &mut rng)
            .into_iter()
            .fold(0.0, f64::max);
        assert!(heavy >= light, "max weight heavy {heavy} vs light {light}");
    }

    #[test]
    fn degree_variation_exceeds_er_at_same_density() {
        // The hallmark of PLRGs: much burstier degrees than G(n,p).
        let mut rng = StdRng::seed_from_u64(3);
        let plrg = Plrg { beta: 2.0, min_degree: 1 };
        let mut cv_plrg = 0.0;
        let mut cv_er = 0.0;
        let trials = 30;
        for _ in 0..trials {
            let g = plrg.sample(60, &mut rng);
            cv_plrg += cvnd(&g.to_graph());
            let m = g.edge_count();
            let er = crate::erdos_renyi::gnm(60, m, &mut rng);
            cv_er += cvnd(&er.to_graph());
        }
        assert!(cv_plrg > 1.3 * cv_er, "PLRG CVND {cv_plrg} should exceed ER CVND {cv_er}");
    }

    #[test]
    fn reproducible() {
        let a = Plrg::default().sample(20, &mut StdRng::seed_from_u64(4));
        let b = Plrg::default().sample(20, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
    }
}
