//! Redundancy-aware synthesis — the extension §2 invites.
//!
//! The PoP-level model deliberately omits redundancy ("We do not include
//! redundancy, port numbers or other complex constraints at this level",
//! §3.2), but the paper stresses that "it is generally easy to add
//! additional costs or constraints to the model" (§2). This module does
//! exactly that: a wrapper [`Objective`] that adds a *bridge cost* — every
//! link whose single failure would disconnect the network incurs an extra
//! penalty — plus survivability analysis of the result.
//!
//! With a small bridge cost the GA trades some build-out budget for rings;
//! with a large one it produces fully 2-edge-connected networks. The cost
//! stays operationally meaningful: it is the expected price of an outage
//! on an unprotected link.

use crate::objective::ColdObjective;
use cold_context::Context;
use cold_cost::CostParams;
use cold_ga::Objective;
use cold_graph::connectivity::{cut_structure, is_two_edge_connected};
use cold_graph::AdjacencyMatrix;
use serde::{Deserialize, Serialize};

/// The COLD objective plus a per-bridge outage cost.
#[derive(Debug, Clone)]
pub struct ResilientObjective<'a> {
    inner: ColdObjective<'a>,
    /// Extra cost charged for every bridge link.
    pub bridge_cost: f64,
}

impl<'a> ResilientObjective<'a> {
    /// Wraps the standard objective with a bridge penalty.
    ///
    /// # Panics
    /// Panics if `bridge_cost` is negative or non-finite.
    pub fn new(ctx: &'a Context, params: CostParams, bridge_cost: f64) -> Self {
        assert!(bridge_cost >= 0.0 && bridge_cost.is_finite(), "bridge cost must be >= 0");
        Self { inner: ColdObjective::new(ctx, params), bridge_cost }
    }

    /// The wrapped plain objective.
    pub fn inner(&self) -> &ColdObjective<'a> {
        &self.inner
    }
}

impl Objective for ResilientObjective<'_> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn distance(&self, u: usize, v: usize) -> f64 {
        self.inner.distance(u, v)
    }
    fn cost(&self, topology: &AdjacencyMatrix) -> f64 {
        let base = self.inner.cost(topology);
        if self.bridge_cost == 0.0 {
            return base;
        }
        let bridges = cut_structure(&topology.to_graph()).bridges.len();
        base + self.bridge_cost * bridges as f64
    }
}

/// Survivability report for a synthesized topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Survivability {
    /// Number of bridge links (single points of failure among links).
    pub bridges: usize,
    /// Number of articulation PoPs (single points of failure among PoPs).
    pub articulation_points: usize,
    /// Whether the network survives any single link failure.
    pub two_edge_connected: bool,
    /// Fraction of total offered traffic that would be disconnected by the
    /// worst single link failure.
    pub worst_link_failure_traffic_fraction: f64,
}

/// Analyzes a topology's survivability in a context.
pub fn survivability(topology: &AdjacencyMatrix, ctx: &Context) -> Survivability {
    let g = topology.to_graph();
    let cuts = cut_structure(&g);
    let total_traffic = ctx.traffic.total();
    let mut worst = 0.0f64;
    for &(u, v) in &cuts.bridges {
        // Removing the bridge splits the network; sum the demand crossing
        // the cut.
        let mut cut = topology.clone();
        cut.set_edge(u, v, false);
        let comps = cold_graph::components::matrix_components(&cut);
        let mut crossing = 0.0;
        for s in 0..ctx.n() {
            for t in 0..ctx.n() {
                if s != t && comps.label[s] != comps.label[t] {
                    crossing += ctx.traffic.demand(s, t);
                }
            }
        }
        if total_traffic > 0.0 {
            worst = worst.max(crossing / total_traffic);
        }
    }
    Survivability {
        bridges: cuts.bridges.len(),
        articulation_points: cuts.articulation_points.len(),
        two_edge_connected: is_two_edge_connected(&g),
        worst_link_failure_traffic_fraction: worst,
    }
}

/// Synthesizes a resilience-aware network: the standard pipeline
/// (heuristic seeds + GA) but optimizing [`ResilientObjective`].
///
/// Returns the best topology, its resilient-objective value, and its
/// survivability report.
pub fn synthesize_resilient(
    base: &crate::ColdConfig,
    bridge_cost: f64,
    seed: u64,
) -> (cold_cost::Network, f64, Survivability) {
    let ctx = base.context.generate(cold_context::rng::derive_seed(seed, 0xC0));
    let objective = ResilientObjective::new(&ctx, base.params, bridge_cost);
    // Seed with the plain heuristics (still valid topologies, just scored
    // differently) exactly as the initialized GA does.
    let eval = cold_cost::CostEvaluator::new(&ctx, base.params);
    let seeds: Vec<AdjacencyMatrix> =
        cold_heuristics::all_heuristics(&eval, &base.random_greedy, seed)
            .into_iter()
            .map(|(_, r)| r.topology)
            .collect();
    let ga_settings =
        cold_ga::GaSettings { seed: cold_context::rng::derive_seed(seed, 0x6741), ..base.ga };
    let engine = cold_ga::GeneticAlgorithm::new(&objective, ga_settings);
    let result = engine.run_seeded(&seeds);
    let report = survivability(&result.best.topology, &ctx);
    let network = cold_cost::Network::build(result.best.topology.clone(), &ctx, base.params)
        .expect("GA output connected");
    (network, result.best.cost, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColdConfig;

    #[test]
    fn bridge_penalty_added_to_cost() {
        let cfg = ColdConfig::quick(6, 1e-4, 0.0);
        let ctx = cfg.context.generate(1);
        let plain = ColdObjective::new(&ctx, cfg.params);
        let res = ResilientObjective::new(&ctx, cfg.params, 50.0);
        // A tree on 6 nodes has 5 bridges.
        let tree = cold_graph::mst::mst_matrix(6, ctx.distance_fn());
        assert!((res.cost(&tree) - (plain.cost(&tree) + 250.0)).abs() < 1e-9);
        // A cycle has none.
        let ring =
            AdjacencyMatrix::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        assert!((res.cost(&ring) - plain.cost(&ring)).abs() < 1e-9);
    }

    #[test]
    fn survivability_of_tree_vs_ring() {
        let cfg = ColdConfig::quick(6, 1e-4, 0.0);
        let ctx = cfg.context.generate(2);
        let tree = cold_graph::mst::mst_matrix(6, ctx.distance_fn());
        let s = survivability(&tree, &ctx);
        assert_eq!(s.bridges, 5);
        assert!(!s.two_edge_connected);
        assert!(s.worst_link_failure_traffic_fraction > 0.0);
        let ring =
            AdjacencyMatrix::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        let s = survivability(&ring, &ctx);
        assert_eq!(s.bridges, 0);
        assert!(s.two_edge_connected);
        assert_eq!(s.worst_link_failure_traffic_fraction, 0.0);
    }

    #[test]
    fn high_bridge_cost_produces_two_edge_connected_networks() {
        let cfg = ColdConfig::quick(9, 1e-4, 0.0);
        let (net, _, report) = synthesize_resilient(&cfg, 1e6, 3);
        assert!(
            report.two_edge_connected,
            "bridge cost 1e6 must eliminate bridges; got {} bridges over {} links",
            report.bridges,
            net.link_count()
        );
        assert!(net.link_count() >= 9, "2-edge-connected needs >= n links");
    }

    #[test]
    fn zero_bridge_cost_reduces_to_plain_cold() {
        let cfg = ColdConfig::quick(8, 1e-4, 10.0);
        let (net, cost, _) = synthesize_resilient(&cfg, 0.0, 4);
        let plain = cfg.synthesize(4);
        assert_eq!(net.topology, plain.network.topology);
        assert!((cost - plain.best_cost()).abs() < 1e-9);
    }

    #[test]
    fn worst_failure_fraction_counts_both_directions() {
        // Barbell: bridge splits 3/3; crossing fraction = 2·9·t/(30·t) for
        // uniform demands = 0.6.
        let ctx = cold_context::Context::from_positions(
            (0..6).map(|i| cold_context::Point::new(i as f64, 0.0)).collect(),
            cold_context::PopulationKind::Constant { value: 1.0 },
            cold_context::GravityModel::raw(),
            0,
        );
        let barbell = AdjacencyMatrix::from_edges(
            6,
            &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)],
        )
        .unwrap();
        let s = survivability(&barbell, &ctx);
        assert_eq!(s.bridges, 1);
        assert!((s.worst_link_failure_traffic_fraction - 0.6).abs() < 1e-9);
    }
}
