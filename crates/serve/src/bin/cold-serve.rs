//! `cold-serve` — the COLD synthesis service.
//!
//! ```sh
//! cold-serve --addr 127.0.0.1:0 --workers 2 --cache-dir runs/serve-cache
//! cold-serve --journal runs/serve.jsonl --deadline 60
//! cold-serve --faults serve.worker_panic:1 --faults-seed 7   # chaos smoke
//! ```
//!
//! Prints `cold-serve listening on http://<addr>` (resolving ephemeral
//! ports) on stdout once bound — scripts scrape that line. Drains
//! gracefully on SIGTERM / SIGINT / `POST /admin/shutdown`: in-flight
//! campaigns cancel at their next trial boundary with the completed
//! prefix checkpointed, so restarting with the same `--cache-dir`
//! resumes them.

use cold_serve::{Server, ServerConfig};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "cold-serve — COLD synthesis service

USAGE:
    cold-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>      bind address (default 127.0.0.1:8093; port 0 = ephemeral)
    --workers <N>           synthesis worker threads (default 2)
    --http-threads <N>      HTTP handler threads (default 4)
    --queue <N>             job queue capacity; full queue answers 503 (default 16)
    --cache-dir <PATH>      content-addressed result cache (default cold-serve-cache)
    --deadline <SECS>       per-trial wall-clock deadline (default none)
    --journal <PATH>        append a JSONL event journal (job + synthesis events)
    --faults <SPEC>         arm deterministic fault injection (COLD_FAULTS syntax)
    --faults-seed <N>       seed for probabilistic fault triggers (default 0)
    -h, --help              show this help
";

/// Set from the signal handler; polled by the main thread.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; `signal(2)` is in every libc std already links.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:8093".into(), ..ServerConfig::default() };
    let mut journal: Option<PathBuf> = None;
    let mut faults: Option<String> = None;
    let mut faults_seed = 0u64;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = value(&mut args, "--addr"),
            "--workers" => {
                config.workers = value(&mut args, "--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers: integer expected\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--http-threads" => {
                config.http_threads =
                    value(&mut args, "--http-threads").parse().unwrap_or_else(|_| {
                        eprintln!("--http-threads: integer expected\n\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--queue" => {
                config.queue_capacity = value(&mut args, "--queue").parse().unwrap_or_else(|_| {
                    eprintln!("--queue: integer expected\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--cache-dir" => config.cache_dir = PathBuf::from(value(&mut args, "--cache-dir")),
            "--deadline" => {
                let secs: f64 = value(&mut args, "--deadline").parse().unwrap_or_else(|_| {
                    eprintln!("--deadline: seconds expected\n\n{USAGE}");
                    std::process::exit(2);
                });
                config.trial_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--journal" => journal = Some(PathBuf::from(value(&mut args, "--journal"))),
            "--faults" => faults = Some(value(&mut args, "--faults")),
            "--faults-seed" => {
                faults_seed = value(&mut args, "--faults-seed").parse().unwrap_or_else(|_| {
                    eprintln!("--faults-seed: integer expected\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unexpected argument `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &journal {
        cold_obs::configure(cold_obs::TraceMode::Journal(path.clone()))
            .unwrap_or_else(|e| panic!("--journal {}: {e}", path.display()));
    }
    if let Some(spec) = &faults {
        cold_fault::configure(spec, faults_seed).unwrap_or_else(|e| {
            eprintln!("--faults: {e}\n\n{USAGE}");
            std::process::exit(2);
        });
    }

    install_signal_handlers();

    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cold-serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    println!("cold-serve listening on http://{}", handle.local_addr());
    std::io::stdout().flush().expect("stdout flush");

    while !SIGNALED.load(Ordering::SeqCst) && !handle.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cold-serve: draining (campaigns cancel at their next trial boundary)");
    handle.shutdown();
    handle.join();
    eprintln!("cold-serve: drained; unfinished jobs resume on restart");
}
