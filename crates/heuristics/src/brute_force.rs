//! Brute-force exact optimum for small instances (§5).
//!
//! "We start by comparing our results to the results of brute-force
//! enumeration … we at least ensure that for networks of up to 8 PoPs that
//! the GA always finds the real optimal solution."
//!
//! Every connected labeled graph on `n` nodes is enumerated (an edge-subset
//! bitmask sweep) and evaluated. A cheap lower bound prunes most masks
//! before the expensive routing evaluation: the `k0/k1/k3`-only part of the
//! cost — which needs no routing — already exceeds the incumbent for most
//! candidates, because the bandwidth term `k2·Σ t·L` is nonnegative.
//!
//! Practical limit: `n ≤ 7` (≈1.9M connected graphs). See DESIGN.md §5 for
//! why the paper's n = 8 is replaced by n ≤ 7 here.

use crate::HeuristicResult;
use cold_cost::CostEvaluator;
use cold_graph::enumerate::{mask_is_connected, matrix_from_mask, pair_table};

/// Hard cap on `n` (2^28 masks at n = 8 with O(n³) evaluation each is a
/// CPU-days job; 7 keeps the sweep in seconds-to-minutes).
pub const MAX_BRUTE_FORCE_NODES: usize = 7;

/// Finds the exact minimum-cost connected topology by exhaustive search.
///
/// # Panics
/// Panics if `n > MAX_BRUTE_FORCE_NODES` or `n < 2`.
pub fn brute_force_optimum(eval: &CostEvaluator<'_>) -> HeuristicResult {
    let n = eval.ctx.n();
    assert!(
        (2..=MAX_BRUTE_FORCE_NODES).contains(&n),
        "brute force supports 2 <= n <= {MAX_BRUTE_FORCE_NODES}, got {n}"
    );
    let pairs = pair_table(n);
    let total: u64 = 1u64 << pairs.len();
    // Per-pair fixed cost (k0 + k1·ℓ) for the pruning lower bound.
    let fixed: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| eval.params.k0 + eval.params.k1 * eval.ctx.distance(u, v))
        .collect();
    let min_edges = (n - 1) as u32;
    let mut best_cost = f64::INFINITY;
    let mut best_mask = 0u64;
    for mask in 0..total {
        if mask.count_ones() < min_edges {
            continue;
        }
        // Lower bound: fixed link costs + hub cost, no routing needed.
        let mut bound = 0.0;
        let mut degree = [0u32; MAX_BRUTE_FORCE_NODES];
        let mut bits = mask;
        while bits != 0 {
            let p = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            bound += fixed[p];
            degree[pairs[p].0] += 1;
            degree[pairs[p].1] += 1;
        }
        bound += eval.params.k3 * degree[..n].iter().filter(|&&d| d > 1).count() as f64;
        if bound >= best_cost {
            continue;
        }
        if !mask_is_connected(n, mask, &pairs) {
            continue;
        }
        let topo = matrix_from_mask(n, mask);
        let cost = eval.cost(&topo).expect("connected by construction");
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }
    HeuristicResult { topology: matrix_from_mask(n, best_mask), cost: best_cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_context::ContextConfig;
    use cold_cost::CostParams;
    use cold_graph::mst::mst_matrix;

    #[test]
    fn k1_dominant_optimum_is_mst() {
        let ctx = ContextConfig::paper_default(5).generate(1);
        let eval = CostEvaluator::new(&ctx, CostParams::new(0.0, 1000.0, 0.0, 0.0));
        let r = brute_force_optimum(&eval);
        let mst = mst_matrix(5, ctx.distance_fn());
        assert!((r.cost - eval.cost(&mst).unwrap()).abs() < 1e-9);
        assert_eq!(r.topology.edge_count(), 4);
    }

    #[test]
    fn k2_dominant_optimum_is_clique() {
        let ctx = ContextConfig::paper_default(4).generate(2);
        let eval = CostEvaluator::new(&ctx, CostParams::new(1e-9, 1e-9, 1000.0, 0.0));
        let r = brute_force_optimum(&eval);
        assert_eq!(r.topology.edge_count(), 6, "clique expected when k2 dominates");
    }

    #[test]
    fn k3_dominant_optimum_is_single_hub() {
        let ctx = ContextConfig::paper_default(5).generate(3);
        let eval = CostEvaluator::new(&ctx, CostParams::new(0.01, 0.01, 0.0, 1e6));
        let r = brute_force_optimum(&eval);
        let hubs = r.topology.degrees().iter().filter(|&&d| d > 1).count();
        assert_eq!(hubs, 1);
        assert_eq!(r.topology.edge_count(), 4);
    }

    #[test]
    fn optimum_beats_all_heuristics() {
        let ctx = ContextConfig::paper_default(6).generate(4);
        let eval = CostEvaluator::new(&ctx, CostParams::paper(4e-4, 10.0));
        let opt = brute_force_optimum(&eval);
        for (name, r) in crate::all_heuristics(&eval, &Default::default(), 5) {
            assert!(
                opt.cost <= r.cost + 1e-9,
                "{name} ({}) beat the brute-force optimum ({})",
                r.cost,
                opt.cost
            );
        }
    }

    #[test]
    #[should_panic(expected = "brute force supports")]
    fn oversized_instance_rejected() {
        let ctx = ContextConfig::paper_default(9).generate(5);
        let eval = CostEvaluator::new(&ctx, CostParams::default());
        brute_force_optimum(&eval);
    }
}
