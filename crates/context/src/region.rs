//! Regions on which PoP locations are drawn (§3.1, §7).
//!
//! The paper's default region is the unit square; §7 reports experiments
//! with "different region shapes, for instance rectangles with different
//! aspect ratios" and finds that only quite long-and-thin regions change
//! the resulting networks significantly. Rectangles (normalized to unit
//! area, parameterized by aspect ratio) and a disk are provided so that
//! experiment is reproducible.

use serde::{Deserialize, Serialize};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        let (dx, dy) = (self.x - other.x, self.y - other.y);
        (dx * dx + dy * dy).sqrt()
    }
}

/// The sampling region for PoP locations.
///
/// All regions have unit area so that cost parameters (which multiply link
/// *lengths*) remain comparable across shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// The unit square `[0,1]²` — the paper's default.
    UnitSquare,
    /// A unit-area rectangle with the given width/height aspect ratio
    /// (width = √aspect, height = 1/√aspect).
    Rectangle {
        /// Width divided by height; must be positive and finite.
        aspect: f64,
    },
    /// A unit-area disk (radius `1/√π`) centered at the origin.
    Disk,
}

impl Region {
    /// Bounding box `(width, height)` of the region.
    pub fn extent(&self) -> (f64, f64) {
        match self {
            Region::UnitSquare => (1.0, 1.0),
            Region::Rectangle { aspect } => {
                assert!(aspect.is_finite() && *aspect > 0.0, "aspect must be positive");
                (aspect.sqrt(), 1.0 / aspect.sqrt())
            }
            Region::Disk => {
                let d = 2.0 / std::f64::consts::PI.sqrt();
                (d, d)
            }
        }
    }

    /// Whether `p` lies inside the region.
    pub fn contains(&self, p: &Point) -> bool {
        match self {
            Region::UnitSquare => (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y),
            Region::Rectangle { .. } => {
                let (w, h) = self.extent();
                (0.0..=w).contains(&p.x) && (0.0..=h).contains(&p.y)
            }
            Region::Disk => {
                let r = 1.0 / std::f64::consts::PI.sqrt();
                p.x * p.x + p.y * p.y <= r * r + 1e-12
            }
        }
    }

    /// Area of the region (always 1 by construction; used as a sanity
    /// invariant in tests).
    pub fn area(&self) -> f64 {
        1.0
    }
}

/// Symmetric Euclidean distance matrix for a set of points.
///
/// `result[u][v] == result[v][u]`, zero diagonal.
pub fn distance_matrix(points: &[Point]) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut d = vec![vec![0.0f64; n]; n];
    for u in 0..n {
        for v in (u + 1)..n {
            let dist = points[u].distance(&points[v]);
            d[u][v] = dist;
            d[v][u] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn unit_square_contains() {
        let r = Region::UnitSquare;
        assert!(r.contains(&Point::new(0.5, 0.5)));
        assert!(r.contains(&Point::new(0.0, 1.0)));
        assert!(!r.contains(&Point::new(1.1, 0.5)));
        assert_eq!(r.extent(), (1.0, 1.0));
    }

    #[test]
    fn rectangle_preserves_unit_area() {
        for aspect in [0.25, 1.0, 4.0, 16.0] {
            let (w, h) = Region::Rectangle { aspect }.extent();
            assert!((w * h - 1.0).abs() < 1e-12, "aspect {aspect}: {w}×{h}");
            assert!((w / h - aspect).abs() < 1e-9);
        }
    }

    #[test]
    fn disk_contains_center_not_corner() {
        let r = Region::Disk;
        assert!(r.contains(&Point::new(0.0, 0.0)));
        let radius = 1.0 / std::f64::consts::PI.sqrt();
        assert!(r.contains(&Point::new(radius * 0.99, 0.0)));
        assert!(!r.contains(&Point::new(radius * 1.01, 0.0)));
    }

    #[test]
    fn distance_matrix_symmetric_zero_diagonal() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)];
        let d = distance_matrix(&pts);
        for (u, row) in d.iter().enumerate() {
            assert_eq!(row[u], 0.0);
            for (v, &duv) in row.iter().enumerate() {
                assert_eq!(duv, d[v][u]);
            }
        }
        assert_eq!(d[0][1], 1.0);
        assert!((d[1][2] - 2f64.sqrt()).abs() < 1e-12);
    }
}
