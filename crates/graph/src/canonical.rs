//! Canonical labeling and isomorphism testing for small graphs.
//!
//! §2 of the paper shows (Fig 2) that dK-series constraints can pin the
//! output down to a single graph *up to isomorphism* — an effect that is
//! "hidden by the graph isomorphism problem". To reproduce that analysis we
//! need exact isomorphism tests on small graphs, including *labeled*
//! isomorphism where each node carries a label (its degree in the host
//! graph, as in the dK-distribution definition).
//!
//! The implementation is a classic refine-then-search canonicalizer:
//! 1. colors are initialized from labels and refined to a fixed point with
//!    1-dimensional Weisfeiler–Leman (neighbor-color multisets);
//! 2. all permutations that respect the refined color partition are
//!    enumerated, and the lexicographically smallest adjacency bitstring is
//!    the canonical form.
//!
//! This is exact (WL colors are isomorphism-invariant, so restricting the
//! search to color-respecting permutations loses nothing) and fast for the
//! graph sizes the paper needs (subgraphs of size `d ≤ 5`, example networks
//! of ≤ 10 nodes). It is **not** intended for large graphs: the search is
//! factorial within color classes.

use crate::adjacency::AdjacencyMatrix;
use std::collections::BTreeMap;

/// A canonical form: two (labeled) graphs are isomorphic iff their
/// canonical forms are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalForm {
    /// Number of nodes.
    pub n: usize,
    /// Node labels in canonical order (sorted by color class).
    pub labels: Vec<u32>,
    /// Bit-packed upper-triangular adjacency of the canonically relabeled
    /// graph.
    pub bits: Vec<u64>,
}

/// Refines node colors to the 1-WL fixed point, starting from `labels`.
///
/// Returned colors are isomorphism-invariant: isomorphic labeled graphs get
/// identical color multisets, and any isomorphism maps color classes onto
/// color classes.
fn wl_refine(m: &AdjacencyMatrix, labels: &[u32]) -> Vec<usize> {
    let n = m.n();
    // Initial colors: rank of label among sorted distinct labels.
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut color: Vec<usize> =
        labels.iter().map(|l| distinct.binary_search(l).expect("label present")).collect();
    let neighbors: Vec<Vec<usize>> = (0..n).map(|v| m.neighbors(v)).collect();
    loop {
        // Signature: (own color, sorted neighbor colors).
        let mut sigs: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
        for v in 0..n {
            let mut nc: Vec<usize> = neighbors[v].iter().map(|&u| color[u]).collect();
            nc.sort_unstable();
            sigs.push((color[v], nc));
        }
        let mut sig_ids: BTreeMap<&(usize, Vec<usize>), usize> = BTreeMap::new();
        for sig in &sigs {
            let next = sig_ids.len();
            sig_ids.entry(sig).or_insert(next);
        }
        // Re-rank so ids follow the BTreeMap's (deterministic) sort order —
        // this keeps the coloring isomorphism-invariant across inputs.
        let mut ordered: Vec<&(usize, Vec<usize>)> = sig_ids.keys().copied().collect();
        ordered.sort();
        let rank: BTreeMap<&(usize, Vec<usize>), usize> =
            ordered.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let new_color: Vec<usize> = sigs.iter().map(|s| rank[s]).collect();
        let classes_before = color.iter().collect::<std::collections::BTreeSet<_>>().len();
        let classes_after = new_color.iter().collect::<std::collections::BTreeSet<_>>().len();
        let stable = classes_after == classes_before && {
            // Same partition? (colors may be renamed)
            let mut map = BTreeMap::new();
            let mut consistent = true;
            for v in 0..n {
                match map.entry(color[v]) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(new_color[v]);
                    }
                    std::collections::btree_map::Entry::Occupied(e) => {
                        if *e.get() != new_color[v] {
                            consistent = false;
                            break;
                        }
                    }
                }
            }
            consistent
        };
        color = new_color;
        if stable {
            return color;
        }
    }
}

/// Extracts the upper-triangular bitstring of `m` relabeled by `perm`
/// (`perm[new_position] = old_node`).
fn bits_under(m: &AdjacencyMatrix, perm: &[usize]) -> Vec<u64> {
    let n = m.n();
    let pairs = n * n.saturating_sub(1) / 2;
    let mut bits = vec![0u64; pairs.div_ceil(64)];
    let mut p = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if m.has_edge(perm[i], perm[j]) {
                bits[p / 64] |= 1u64 << (p % 64);
            }
            p += 1;
        }
    }
    bits
}

/// Computes the canonical form of a labeled graph.
///
/// `labels[v]` is an arbitrary node label (e.g. the node's degree in a host
/// graph for dK subgraph classification). Isomorphisms must preserve labels.
///
/// # Panics
/// Panics if `labels.len() != m.n()`, or if the refined color partition is
/// so symmetric that more than ~10⁷ permutations would be searched (use
/// only on small graphs).
pub fn canonical_form_labeled(m: &AdjacencyMatrix, labels: &[u32]) -> CanonicalForm {
    let n = m.n();
    assert_eq!(labels.len(), n, "labels must cover every node");
    if n == 0 {
        return CanonicalForm { n: 0, labels: Vec::new(), bits: Vec::new() };
    }
    let color = wl_refine(m, labels);
    // Group nodes by refined color, classes in ascending color order.
    let max_color = color.iter().copied().max().unwrap_or(0);
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); max_color + 1];
    for (v, &c) in color.iter().enumerate() {
        classes[c].push(v);
    }
    classes.retain(|c| !c.is_empty());
    // Guard against pathological symmetry.
    let mut work = 1f64;
    for c in &classes {
        for k in 1..=c.len() {
            work *= k as f64;
        }
    }
    assert!(
        work <= 1e7,
        "canonicalization would search {work:.0} permutations; graph too symmetric/large"
    );
    // Depth-first search over per-class permutations, tracking the minimum
    // bitstring.
    let mut best: Option<Vec<u64>> = None;
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    search(m, &classes, 0, &mut perm, &mut best);
    let perm_labels: Vec<u32> = {
        // Labels in canonical order: class by class (all nodes in a class
        // share a label because labels seeded the refinement).
        classes.iter().flat_map(|c| c.iter().map(|&v| labels[v])).collect()
    };
    CanonicalForm { n, labels: perm_labels, bits: best.expect("at least one permutation") }
}

fn search(
    m: &AdjacencyMatrix,
    classes: &[Vec<usize>],
    class_idx: usize,
    perm: &mut Vec<usize>,
    best: &mut Option<Vec<u64>>,
) {
    if class_idx == classes.len() {
        let bits = bits_under(m, perm);
        match best {
            None => *best = Some(bits),
            Some(b) => {
                if bits < *b {
                    *best = Some(bits);
                }
            }
        }
        return;
    }
    // Enumerate permutations of this class appended to `perm`.
    let class = &classes[class_idx];
    permute_class(m, classes, class_idx, class, &mut vec![false; class.len()], perm, best);
}

fn permute_class(
    m: &AdjacencyMatrix,
    classes: &[Vec<usize>],
    class_idx: usize,
    class: &[usize],
    used: &mut Vec<bool>,
    perm: &mut Vec<usize>,
    best: &mut Option<Vec<u64>>,
) {
    if used.iter().all(|&u| u) {
        search(m, classes, class_idx + 1, perm, best);
        return;
    }
    for i in 0..class.len() {
        if !used[i] {
            used[i] = true;
            perm.push(class[i]);
            permute_class(m, classes, class_idx, class, used, perm, best);
            perm.pop();
            used[i] = false;
        }
    }
}

/// Canonical form ignoring labels (all nodes labeled 0).
pub fn canonical_form(m: &AdjacencyMatrix) -> CanonicalForm {
    canonical_form_labeled(m, &vec![0u32; m.n()])
}

/// Exact isomorphism test for small unlabeled graphs.
pub fn are_isomorphic(a: &AdjacencyMatrix, b: &AdjacencyMatrix) -> bool {
    a.n() == b.n() && a.edge_count() == b.edge_count() && canonical_form(a) == canonical_form(b)
}

/// Exact isomorphism test for small labeled graphs.
pub fn are_isomorphic_labeled(
    a: &AdjacencyMatrix,
    la: &[u32],
    b: &AdjacencyMatrix,
    lb: &[u32],
) -> bool {
    a.n() == b.n()
        && a.edge_count() == b.edge_count()
        && canonical_form_labeled(a, la) == canonical_form_labeled(b, lb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> AdjacencyMatrix {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        AdjacencyMatrix::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn relabeled_path_is_isomorphic() {
        let p = path(5);
        let q = p.permuted(&[4, 2, 0, 1, 3]);
        assert!(are_isomorphic(&p, &q));
    }

    #[test]
    fn path_vs_star_not_isomorphic() {
        let p = path(4);
        let star = AdjacencyMatrix::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(!are_isomorphic(&p, &star));
    }

    #[test]
    fn cycle_vs_path_plus_edge() {
        let c4 = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        // Triangle with pendant has same n and m but different structure.
        let tri = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert!(!are_isomorphic(&c4, &tri));
        // And any relabeled 4-cycle matches.
        let c4b = c4.permuted(&[2, 0, 3, 1]);
        assert!(are_isomorphic(&c4, &c4b));
    }

    #[test]
    fn labels_distinguish_otherwise_isomorphic_graphs() {
        // Single edge; labels (1,2) vs (2,1) are isomorphic (swap), but
        // (1,1) vs (1,2) are not.
        let e = AdjacencyMatrix::from_edges(2, &[(0, 1)]).unwrap();
        assert!(are_isomorphic_labeled(&e, &[1, 2], &e, &[2, 1]));
        assert!(!are_isomorphic_labeled(&e, &[1, 1], &e, &[1, 2]));
    }

    #[test]
    fn labeled_path_respects_label_placement() {
        // Path a-b-c with end labels distinct: 1-0-2 ≅ 2-0-1 but ≇ 0-1-2.
        let p = path(3);
        assert!(are_isomorphic_labeled(&p, &[1, 0, 2], &p, &[2, 0, 1]));
        assert!(!are_isomorphic_labeled(&p, &[1, 0, 2], &p, &[0, 1, 2]));
    }

    #[test]
    fn canonical_form_is_invariant_under_relabeling() {
        let g = AdjacencyMatrix::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)],
        )
        .unwrap();
        let c1 = canonical_form(&g);
        let c2 = canonical_form(&g.permuted(&[3, 5, 1, 0, 4, 2]));
        assert_eq!(c1, c2);
    }

    #[test]
    fn regular_graphs_still_canonicalize() {
        // Two non-isomorphic 3-regular graphs on 6 nodes: K_{3,3} vs prism.
        let k33 = AdjacencyMatrix::from_edges(
            6,
            &[(0, 3), (0, 4), (0, 5), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)],
        )
        .unwrap();
        let prism = AdjacencyMatrix::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)],
        )
        .unwrap();
        assert!(!are_isomorphic(&k33, &prism));
        assert!(are_isomorphic(&prism, &prism.permuted(&[1, 2, 0, 4, 5, 3])));
    }

    #[test]
    fn empty_graph_canonical_form() {
        let g = AdjacencyMatrix::empty(0);
        let c = canonical_form(&g);
        assert_eq!(c.n, 0);
    }
}
