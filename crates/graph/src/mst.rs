//! Minimum spanning trees and the inter-component joining step.
//!
//! MSTs appear in three places in the paper:
//! 1. the minimum spanning tree is one of the GA's seed topologies (§4.1);
//! 2. the `MST` greedy heuristic connects hubs in a spanning tree (§5);
//! 3. the connectivity-repair step joins disconnected components with a
//!    minimum spanning tree over the shortest inter-component links
//!    (§4.1.3).
//!
//! Weights are supplied as a closure `(u, v) -> f64` so callers can pass a
//! Euclidean distance matrix, a cost-adjusted length, or anything else
//! without copying.

use crate::adjacency::AdjacencyMatrix;
use crate::components::matrix_components;
use crate::union_find::UnionFind;
use crate::WeightedEdge;

/// Kruskal's MST over the complete graph on `n` nodes with the given pair
/// weight. Returns `n - 1` edges (empty for `n <= 1`).
///
/// Ties are broken deterministically by `(weight, u, v)` so results are
/// reproducible across runs and platforms.
///
/// # Panics
/// Panics if any weight is NaN.
pub fn mst_kruskal(n: usize, weight: impl Fn(usize, usize) -> f64) -> Vec<WeightedEdge> {
    if n <= 1 {
        return Vec::new();
    }
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            let w = weight(u, v);
            assert!(!w.is_nan(), "NaN weight for pair ({u},{v})");
            edges.push(WeightedEdge { u, v, weight: w });
        }
    }
    edges.sort_by(|a, b| {
        a.weight.total_cmp(&b.weight).then_with(|| a.u.cmp(&b.u)).then_with(|| a.v.cmp(&b.v))
    });
    let mut uf = UnionFind::new(n);
    let mut out = Vec::with_capacity(n - 1);
    for e in edges {
        if uf.union(e.u, e.v) {
            out.push(e);
            if out.len() == n - 1 {
                break;
            }
        }
    }
    out
}

/// Prim's MST for dense graphs: O(n²) with no heap, the right shape when the
/// input is a complete geometric graph (as in COLD's repair and seeding).
///
/// Equivalent tree weight to [`mst_kruskal`]; edge set may differ under ties.
pub fn mst_prim(n: usize, weight: impl Fn(usize, usize) -> f64) -> Vec<WeightedEdge> {
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    in_tree[0] = true;
    for (v, b) in best.iter_mut().enumerate().skip(1) {
        *b = weight(0, v);
        assert!(!b.is_nan(), "NaN weight for pair (0,{v})");
    }
    let mut out = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut pick = usize::MAX;
        for v in 0..n {
            if !in_tree[v] && (pick == usize::MAX || best[v] < best[pick]) {
                pick = v;
            }
        }
        debug_assert_ne!(pick, usize::MAX);
        in_tree[pick] = true;
        out.push(WeightedEdge::new(best_from[pick], pick, best[pick]));
        for v in 0..n {
            if !in_tree[v] {
                let w = weight(pick, v);
                assert!(!w.is_nan(), "NaN weight for pair ({pick},{v})");
                if w < best[v] {
                    best[v] = w;
                    best_from[v] = pick;
                }
            }
        }
    }
    out
}

/// The MST as an [`AdjacencyMatrix`] — the GA's spanning-tree seed (§4.1).
pub fn mst_matrix(n: usize, weight: impl Fn(usize, usize) -> f64) -> AdjacencyMatrix {
    let mut m = AdjacencyMatrix::empty(n);
    for e in mst_kruskal(n, weight) {
        m.set_edge(e.u, e.v, true);
    }
    m
}

/// Connectivity repair (§4.1.3): if `m` is disconnected, finds the shortest
/// link between each pair of connected components and adds a minimum
/// spanning tree (by physical link distance) over those candidate links so
/// the result is connected.
///
/// Returns the edges that were added (empty when already connected).
pub fn join_components(
    m: &mut AdjacencyMatrix,
    weight: impl Fn(usize, usize) -> f64,
) -> Vec<WeightedEdge> {
    let comps = matrix_components(m);
    if comps.count <= 1 {
        return Vec::new();
    }
    let groups = comps.groups();
    let k = comps.count;
    // Shortest physical link between each pair of components.
    let mut bridge: Vec<Vec<Option<WeightedEdge>>> = vec![vec![None; k]; k];
    for a in 0..k {
        for b in (a + 1)..k {
            let mut best: Option<WeightedEdge> = None;
            for &u in &groups[a] {
                for &v in &groups[b] {
                    let w = weight(u, v);
                    assert!(!w.is_nan(), "NaN weight for pair ({u},{v})");
                    let cand = WeightedEdge::new(u, v, w);
                    let better = match &best {
                        None => true,
                        Some(cur) => {
                            cand.weight < cur.weight
                                || (cand.weight == cur.weight && (cand.u, cand.v) < (cur.u, cur.v))
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
            bridge[a][b] = best;
        }
    }
    // MST over the component meta-graph using the bridge weights.
    let meta = mst_kruskal(k, |a, b| {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        bridge[a][b].expect("bridge exists for every component pair").weight
    });
    let mut added = Vec::with_capacity(meta.len());
    for e in meta {
        let link = bridge[e.u][e.v].expect("bridge exists");
        m.set_edge(link.u, link.v, true);
        added.push(link);
    }
    debug_assert!(crate::components::matrix_is_connected(m));
    added
}

/// Total weight of an edge set.
pub fn total_weight(edges: &[WeightedEdge]) -> f64 {
    edges.iter().map(|e| e.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four points on a line at x = 0, 1, 2, 10.
    fn line_weight(u: usize, v: usize) -> f64 {
        let xs = [0.0f64, 1.0, 2.0, 10.0];
        (xs[u] - xs[v]).abs()
    }

    #[test]
    fn kruskal_on_line_picks_consecutive_edges() {
        let t = mst_kruskal(4, line_weight);
        assert_eq!(t.len(), 3);
        assert_eq!(total_weight(&t), 10.0);
        let pairs: Vec<_> = t.iter().map(|e| (e.u, e.v)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 3)));
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        // A pseudo-random but deterministic weight function.
        let w = |u: usize, v: usize| (((u * 7 + v * 13) % 10) + 1) as f64;
        let sym = |u: usize, v: usize| if u < v { w(u, v) } else { w(v, u) };
        for n in [2usize, 5, 9] {
            let k = total_weight(&mst_kruskal(n, sym));
            let p = total_weight(&mst_prim(n, sym));
            assert!((k - p).abs() < 1e-12, "n={n}: kruskal {k} != prim {p}");
        }
    }

    #[test]
    fn trivial_sizes() {
        assert!(mst_kruskal(0, |_, _| 1.0).is_empty());
        assert!(mst_kruskal(1, |_, _| 1.0).is_empty());
        assert!(mst_prim(1, |_, _| 1.0).is_empty());
    }

    #[test]
    fn mst_matrix_is_spanning_tree() {
        let m = mst_matrix(6, line_like(6));
        assert_eq!(m.edge_count(), 5);
        assert!(crate::components::matrix_is_connected(&m));
    }

    fn line_like(n: usize) -> impl Fn(usize, usize) -> f64 {
        move |u, v| {
            let _ = n;
            (u as f64 - v as f64).abs()
        }
    }

    #[test]
    fn join_components_connects_minimally() {
        // Two components {0,1} and {2,3} on a line; cheapest bridge is 1-2.
        let mut m = AdjacencyMatrix::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let added = join_components(&mut m, line_like(4));
        assert_eq!(added.len(), 1);
        assert_eq!((added[0].u, added[0].v), (1, 2));
        assert!(crate::components::matrix_is_connected(&m));
    }

    #[test]
    fn join_components_noop_when_connected() {
        let mut m = AdjacencyMatrix::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(join_components(&mut m, line_like(3)).is_empty());
        assert_eq!(m.edge_count(), 2);
    }

    #[test]
    fn join_many_singletons_builds_mst() {
        let mut m = AdjacencyMatrix::empty(5);
        let added = join_components(&mut m, line_like(5));
        assert_eq!(added.len(), 4);
        assert!(crate::components::matrix_is_connected(&m));
        // Line metric ⇒ the MST over singletons is the path graph.
        assert_eq!(total_weight(&added), 4.0);
    }
}
