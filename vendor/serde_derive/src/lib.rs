//! Vendored, dependency-free stand-in for `serde_derive`.
//!
//! The real `serde_derive` (and its `syn`/`quote` dependency tree) is not
//! available offline, so this crate hand-parses the derive input token
//! stream and emits `Serialize`/`Deserialize` impls targeting the
//! workspace's vendored `serde`, whose data model is a JSON value tree
//! (`serde::Value`). Supported item shapes — everything this workspace
//! derives on:
//!
//! - unit structs, named-field structs, tuple structs;
//! - enums with unit, tuple and struct variants (externally tagged, like
//!   upstream serde: `Unit` ↦ `"Unit"`, `New(x)` ↦ `{"New": x}`,
//!   `Pair(a, b)` ↦ `{"Pair": [a, b]}`, `S { f }` ↦ `{"S": {"f": f}}`).
//!
//! Generic types are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (`fn to_json_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, shape } => serialize_struct(name, shape),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (`fn from_json_value(&Value) -> Option<Self>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, shape } => deserialize_struct(name, shape),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_top_level_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("serde derive (vendored): malformed enum `{name}`");
            };
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        other => panic!("serde derive (vendored): unsupported item kind `{other}`"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        // `#` is always followed by the bracketed attribute body.
        *i += 2;
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super) / …
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive (vendored): expected identifier, found {other:?}"),
    }
}

/// Parses `field: Type, …` returning the field names. Types are skipped
/// token-wise, tracking `<…>` nesting so commas inside generics don't
/// split fields (parens/brackets/braces are already atomic groups).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde derive (vendored): expected `:` after `{field}`, found {other:?}")
            }
        }
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts comma-separated fields at the top level of a tuple-field list.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut fields = 1usize;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma does not open another field.
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => fields += 1,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde derive (vendored): explicit discriminants are not supported")
            }
            other => panic!("serde derive (vendored): unexpected token after variant: {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let mut b = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                let _ = writeln!(
                    b,
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_json_value(&self.{f}));"
                );
            }
            b.push_str("::serde::Value::Object(__m)");
            b
        }
        Shape::Tuple(k) => {
            let mut b = String::from("::serde::Value::Array(::std::vec![");
            for idx in 0..*k {
                let _ = write!(b, "::serde::Serialize::to_json_value(&self.{idx}),");
            }
            b.push_str("])");
            b
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                let _ = writeln!(
                    arms,
                    "{name}::{vn} => \
                     ::serde::Value::String(::std::string::String::from(\"{vn}\")),"
                );
            }
            Shape::Tuple(k) => {
                let binds: Vec<String> = (0..*k).map(|i| format!("__f{i}")).collect();
                let inner = if *k == 1 {
                    "::serde::Serialize::to_json_value(__f0)".to_string()
                } else {
                    let mut s = String::from("::serde::Value::Array(::std::vec![");
                    for b in &binds {
                        let _ = write!(s, "::serde::Serialize::to_json_value({b}),");
                    }
                    s.push_str("])");
                    s
                };
                let _ = writeln!(
                    arms,
                    "{name}::{vn}({}) => {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         __m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                         ::serde::Value::Object(__m)\n\
                     }}",
                    binds.join(", ")
                );
            }
            Shape::Named(fields) => {
                let mut inner = String::from("let mut __i = ::serde::Map::new();\n");
                for f in fields {
                    let _ = writeln!(
                        inner,
                        "__i.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value({f}));"
                    );
                }
                let _ = writeln!(
                    arms,
                    "{name}::{vn} {{ {} }} => {{\n\
                         {inner}\
                         let mut __m = ::serde::Map::new();\n\
                         __m.insert(::std::string::String::from(\"{vn}\"), \
                         ::serde::Value::Object(__i));\n\
                         ::serde::Value::Object(__m)\n\
                     }}",
                    fields.join(", ")
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("let _ = __v;\n::std::option::Option::Some({name})"),
        Shape::Named(fields) => {
            let mut b = String::from("let __obj = __v.as_object()?;\n");
            let _ = write!(b, "::std::option::Option::Some({name} {{");
            for f in fields {
                let _ = write!(
                    b,
                    "\n{f}: ::serde::Deserialize::from_json_value(__obj.get(\"{f}\")?)?,"
                );
            }
            b.push_str("\n})");
            b
        }
        Shape::Tuple(k) => {
            let mut b = String::from("let __arr = __v.as_array()?;\n");
            let _ = write!(b, "::std::option::Option::Some({name}(");
            for idx in 0..*k {
                let _ = write!(b, "::serde::Deserialize::from_json_value(__arr.get({idx})?)?,");
            }
            b.push_str("))");
            b
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(__v: &::serde::Value) -> ::std::option::Option<Self> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                let _ =
                    writeln!(unit_arms, "\"{vn}\" => ::std::option::Option::Some({name}::{vn}),");
            }
            Shape::Tuple(1) => {
                let _ = writeln!(
                    tagged_arms,
                    "\"{vn}\" => ::std::option::Option::Some({name}::{vn}(\
                     ::serde::Deserialize::from_json_value(__val)?)),"
                );
            }
            Shape::Tuple(k) => {
                let mut fields = String::new();
                for idx in 0..*k {
                    let _ = write!(
                        fields,
                        "::serde::Deserialize::from_json_value(__arr.get({idx})?)?,"
                    );
                }
                let _ = writeln!(
                    tagged_arms,
                    "\"{vn}\" => {{\n\
                         let __arr = __val.as_array()?;\n\
                         ::std::option::Option::Some({name}::{vn}({fields}))\n\
                     }}"
                );
            }
            Shape::Named(fs) => {
                let mut fields = String::new();
                for f in fs {
                    let _ = write!(
                        fields,
                        "\n{f}: ::serde::Deserialize::from_json_value(__o.get(\"{f}\")?)?,"
                    );
                }
                let _ = writeln!(
                    tagged_arms,
                    "\"{vn}\" => {{\n\
                         let __o = __val.as_object()?;\n\
                         ::std::option::Option::Some({name}::{vn} {{{fields}\n}})\n\
                     }}"
                );
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(__v: &::serde::Value) -> ::std::option::Option<Self> {{\n\
                 if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     return match __s {{\n{unit_arms}\
                         _ => ::std::option::Option::None,\n\
                     }};\n\
                 }}\n\
                 let __obj = __v.as_object()?;\n\
                 let (__tag, __val) = __obj.iter().next()?;\n\
                 let _ = __val;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                     _ => ::std::option::Option::None,\n\
                 }}\n\
             }}\n\
         }}"
    )
}
