//! Incremental (delta) objective evaluation for large-`n` synthesis.
//!
//! The GA's runtime is dominated by all-pairs shortest paths: every
//! offspring re-routes the full traffic matrix even though mutation flips
//! only ~2 links and late-stage crossover children differ from their
//! parents by a handful of pairs. [`DeltaEval`] exploits that locality:
//! it keeps the routing state (per-source distance and parent rows) of
//! the **anchor** — the last successfully evaluated topology — and, given
//! the next candidate, repairs only the shortest-path trees the flipped
//! edges actually touch, re-prices only the rerouted demand, and falls
//! back to a full [`evaluate_total`](crate::evaluate_total)-equivalent
//! pass when the dirty set
//! exceeds its thresholds.
//!
//! # Bit-identity
//!
//! Delta evaluation is an optimization, not an approximation: every total
//! it returns is **bit-identical** to [`evaluate_total`](crate::evaluate_total) on the same
//! topology. Three facts make that exact, not merely close:
//!
//! 1. *Distances are schedule-independent.* Dijkstra labels are left-fold
//!    sums `((0 ⊕ w₁) ⊕ w₂) ⊕ …` of real path weights, and float addition
//!    is monotone on non-negatives. Any relaxation process whose labels
//!    are always fold-sums of real paths and which terminates at the
//!    relaxation fixpoint (`dist[v] ≤ dist[u] ⊕ w` for every edge)
//!    computes exactly the minimum fold-sum per vertex — independent of
//!    relaxation order, neighbor order, or whether it started from
//!    scratch or from a repaired previous tree. The repair below
//!    terminates at that fixpoint, so its rows equal a fresh run's rows
//!    bit for bit.
//! 2. *Per-source pricing shares one loop.* Each repaired source's
//!    `Σ_t t(s,t)·dist[t]` goes through
//!    [`cold_graph::routing::source_weighted_demand`],
//!    the same per-source accumulation `route_loads_into` runs, and the
//!    per-source terms are folded in ascending source order — the same
//!    summation tree as the full pass.
//! 3. *The remaining terms are recomputed.* `k0·|E|`, `k1·Σℓ` and
//!    `k3·hubs` are cheap (O(m + n)) and evaluated from the candidate
//!    exactly as [`evaluate_total`](crate::evaluate_total) evaluates them.
//!
//! # Repair algorithm
//!
//! For each source `s` whose tree is touched (a deleted edge is one of
//! its tree edges, or an inserted edge strictly shortens some label):
//!
//! 1. **Orphan** the subtree below every deleted tree edge (memoized
//!    parent walks — O(n)); orphans get `dist = ∞`.
//! 2. **Seed** every orphan from its non-orphan neighbors in the *new*
//!    graph, and relax inserted edges between non-orphans (strict `<`).
//! 3. **Propagate** with a lazy-deletion min-heap until quiescent.
//!
//! Non-orphan labels never need to grow (their tree paths survive the
//! deletion by construction), so decrease-only relaxation reaches the
//! fixpoint. Sources the flips don't touch keep their rows and their
//! cached per-source price untouched.

use crate::params::CostParams;
use cold_context::Context;
use cold_graph::routing::source_weighted_demand;
use cold_graph::shortest_path::DijkstraWorkspace;
use cold_graph::{AdjacencyMatrix, Graph, GraphError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Routing state of the last successfully evaluated topology.
#[derive(Debug, Clone)]
struct Anchor {
    /// The evaluated chromosome.
    topology: AdjacencyMatrix,
    /// Row-major `n × n` distance rows, one per source.
    dist: Vec<f64>,
    /// Row-major `n × n` parent rows (`parent[s*n + s] == s`).
    parent: Vec<usize>,
    /// `per_source[s] = Σ_t t(s,t)·dist_s[t]` — cached so unaffected
    /// sources are never re-priced.
    per_source: Vec<f64>,
    /// The anchor's total cost (returned directly for duplicate
    /// candidates).
    total: f64,
}

/// Min-heap item ordered by `(dist, node)` via `total_cmp`, reversed for
/// `BinaryHeap`'s max-heap semantics — the same ordering the full
/// Dijkstra uses.
#[derive(Debug)]
struct MinItem {
    dist: f64,
    node: usize,
}

impl PartialEq for MinItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MinItem {}
impl PartialOrd for MinItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

/// CSR adjacency with per-arc lengths for the candidate topology.
#[derive(Debug, Default)]
struct Csr {
    start: Vec<usize>,
    node: Vec<usize>,
    len: Vec<f64>,
}

impl Csr {
    fn build(&mut self, g: &Graph, len: impl Fn(usize, usize) -> f64) {
        let n = g.n();
        self.start.clear();
        self.node.clear();
        self.len.clear();
        self.start.reserve(n + 1);
        self.start.push(0);
        for u in 0..n {
            for &v in g.neighbors(u) {
                let w = len(u, v);
                assert!(w >= 0.0, "negative or NaN edge length on ({u},{v}): {w}");
                self.node.push(v);
                self.len.push(w);
            }
            self.start.push(self.node.len());
        }
    }
}

/// Reusable buffers; everything grows on first use and is reused across
/// evaluations.
#[derive(Debug, Default)]
struct Scratch {
    csr: Csr,
    dijkstra: DijkstraWorkspace,
    demand: Vec<f64>,
    /// Per-vertex repair status: 0 unknown, 1 keeps its label, 2 orphan.
    status: Vec<u8>,
    chain: Vec<usize>,
    heap: BinaryHeap<MinItem>,
    wdist: Vec<f64>,
    wparent: Vec<usize>,
    /// Repaired rows, staged here and committed only when every affected
    /// source repaired (and priced) successfully.
    rdist: Vec<f64>,
    rparent: Vec<usize>,
    rweighted: Vec<f64>,
    affected: Vec<usize>,
}

/// An incremental evaluation session: the delta-aware counterpart of
/// [`CostEvaluator`](crate::CostEvaluator).
///
/// One `DeltaEval` serves one worker thread. [`eval`](Self::eval) decides
/// per candidate whether to repair the anchor's shortest-path trees or to
/// re-route from scratch; either way the returned total is bit-identical
/// to [`evaluate_total`](crate::evaluate_total), so using a `DeltaEval`
/// can change *how much work* an optimization does but never *what it
/// computes*.
#[derive(Debug)]
pub struct DeltaEval<'a> {
    ctx: &'a Context,
    params: CostParams,
    /// Candidates differing from the anchor (or the base hint) by more
    /// than this many pairs are evaluated from scratch.
    max_flips: usize,
    /// Fall back to a full pass when more than this many sources need
    /// repair — beyond that, n fresh Dijkstras are cheaper than the
    /// bookkeeping.
    max_affected: usize,
    anchor: Option<Anchor>,
    scratch: Scratch,
    delta_evals: usize,
    full_evals: usize,
    reanchors: usize,
}

impl<'a> DeltaEval<'a> {
    /// Creates a session with default thresholds: `max_flips = 32` and
    /// `max_affected = n` (the affected-count guard never fires; only
    /// oversized diffs force a full pass).
    ///
    /// Repairing a source tree costs far less than a fresh Dijkstra as
    /// long as the orphaned region is local — which single-edge GA moves
    /// keep true even when *most* sources are touched (a deleted MST
    /// edge reroutes a couple of leaves in nearly every tree). Measured
    /// on mutation chains at n = 200, capping at n/2 forced ~30% of
    /// steps to a full pass and halved throughput; the affected count is
    /// a poor proxy for repair cost, so the default no longer bounds it.
    pub fn new(ctx: &'a Context, params: CostParams) -> Self {
        params.validate().expect("invalid cost params");
        let n = ctx.n();
        Self::with_limits(ctx, params, 32, n.max(1))
    }

    /// Creates a session with explicit fallback thresholds (both ≥ 1).
    pub fn with_limits(
        ctx: &'a Context,
        params: CostParams,
        max_flips: usize,
        max_affected: usize,
    ) -> Self {
        params.validate().expect("invalid cost params");
        assert!(max_flips >= 1 && max_affected >= 1, "thresholds must be >= 1");
        Self {
            ctx,
            params,
            max_flips,
            max_affected,
            anchor: None,
            scratch: Scratch::default(),
            delta_evals: 0,
            full_evals: 0,
            reanchors: 0,
        }
    }

    /// Evaluations answered by tree repair (including zero-flip
    /// duplicates of the anchor).
    pub fn delta_evals(&self) -> usize {
        self.delta_evals
    }

    /// Evaluations answered by a full from-scratch pass.
    pub fn full_evals(&self) -> usize {
        self.full_evals
    }

    /// Internal anchor rebuilds triggered by a base hint (not counted in
    /// either request counter; their all-pairs work is attributed to the
    /// delta request that triggered them).
    pub fn reanchors(&self) -> usize {
        self.reanchors
    }

    /// Cost of `topology`, bit-identical to
    /// [`evaluate_total`](crate::evaluate_total).
    ///
    /// `base` is an optional lineage hint: the topology `topology` was
    /// derived from (its parent in the GA). When the candidate has
    /// drifted too far from the anchor but sits close to `base`, the
    /// session re-anchors on `base` (one internal full pass) and repairs
    /// from there — the pattern a converged population's offspring
    /// produce.
    ///
    /// # Errors
    /// As for [`evaluate_total`](crate::evaluate_total): disconnection
    /// under positive demand, or a node-count mismatch. Errors never
    /// corrupt the anchor — the session stays usable.
    pub fn eval(
        &mut self,
        topology: &AdjacencyMatrix,
        base: Option<&AdjacencyMatrix>,
    ) -> Result<f64, GraphError> {
        // Same fault boundary as `evaluate_total`: sessions are a drop-in
        // replacement for the stateless path, so chaos scenarios armed
        // against `eval.*` must fire here too.
        if cold_fault::armed() {
            if cold_fault::should_fire("eval.panic") {
                panic!("cold-fault: injected panic at eval.panic");
            }
            if cold_fault::should_fire("eval.nan") {
                return Ok(f64::NAN);
            }
            if cold_fault::should_fire("eval.slow") {
                std::thread::sleep(std::time::Duration::from_millis(15));
            }
        }
        let _timer = cold_obs::timer("cost.evaluate_total");
        // Attribute this evaluation's wall time to the delta or full
        // histogram depending on which path actually resolved it.
        let start = if cold_obs::timers_enabled() { Some(std::time::Instant::now()) } else { None };
        let observe = |path: &'static str, start: Option<std::time::Instant>| {
            if let Some(start) = start {
                cold_obs::observe_seconds(path, start.elapsed().as_secs_f64());
            }
        };
        if topology.n() != self.ctx.n() {
            return Err(GraphError::SizeMismatch { expected: self.ctx.n(), actual: topology.n() });
        }
        if self.anchor.is_some() {
            if let Some(total) = self.try_delta(topology)? {
                self.delta_evals += 1;
                observe("cost.eval_delta_seconds", start);
                return Ok(total);
            }
            // Too far from the anchor. If the candidate is close to its
            // declared parent, rebuild the anchor there and retry; a
            // parent that fails to anchor (it should always be a
            // previously evaluated, connected topology) simply drops
            // through to the full pass.
            if let Some(b) = base {
                let near_base = b != &self.anchor.as_ref().expect("anchor checked").topology
                    && topology.diff_pairs_up_to(b, self.max_flips)?.is_some();
                if near_base && self.full_anchor(b).is_ok() {
                    self.reanchors += 1;
                    if let Some(total) = self.try_delta(topology)? {
                        self.delta_evals += 1;
                        observe("cost.eval_delta_seconds", start);
                        return Ok(total);
                    }
                }
            }
        }
        let total = self.full_anchor(topology)?;
        self.full_evals += 1;
        observe("cost.eval_full_seconds", start);
        Ok(total)
    }

    /// Full evaluation that also (re)builds the anchor. Bit-identical to
    /// [`evaluate_total`](crate::evaluate_total): same CSR order, same
    /// Dijkstra, same per-source pricing loop, same fold order.
    fn full_anchor(&mut self, topology: &AdjacencyMatrix) -> Result<f64, GraphError> {
        let n = self.ctx.n();
        let g = topology.to_graph();
        let dist_fn = self.ctx.distance_fn();
        let traffic = self.ctx.traffic_fn();
        let s = &mut self.scratch;
        s.csr.build(&g, dist_fn);
        let mut dist = vec![f64::INFINITY; n * n];
        let mut parent = vec![usize::MAX; n * n];
        let mut per_source = vec![0.0f64; n];
        let mut weighted = 0.0f64;
        for src in 0..n {
            s.dijkstra.run_csr(src, &s.csr.start, &s.csr.node, &s.csr.len);
            let w = source_weighted_demand(src, s.dijkstra.dist(), traffic, &mut s.demand)?;
            per_source[src] = w;
            weighted += w;
            dist[src * n..(src + 1) * n].copy_from_slice(s.dijkstra.dist());
            parent[src * n..(src + 1) * n].copy_from_slice(s.dijkstra.parent());
        }
        let total = total_from_parts(&g, dist_fn, weighted, &self.params);
        self.anchor = Some(Anchor { topology: topology.clone(), dist, parent, per_source, total });
        Ok(total)
    }

    /// Attempts a repair against the current anchor. `Ok(None)` means the
    /// dirty set exceeded a threshold (caller falls back); `Ok(Some(t))`
    /// commits the repaired state as the new anchor.
    fn try_delta(&mut self, child: &AdjacencyMatrix) -> Result<Option<f64>, GraphError> {
        let anchor = self.anchor.as_mut().expect("try_delta requires an anchor");
        let n = child.n();
        let Some(flips) = child.diff_pairs_up_to(&anchor.topology, self.max_flips)? else {
            return Ok(None);
        };
        if flips.is_empty() {
            return Ok(Some(anchor.total));
        }
        let dist_fn = self.ctx.distance_fn();
        let mut deleted: Vec<(usize, usize)> = Vec::with_capacity(flips.len());
        let mut inserted: Vec<(usize, usize, f64)> = Vec::with_capacity(flips.len());
        for &(u, v) in &flips {
            if child.has_edge(u, v) {
                inserted.push((u, v, dist_fn(u, v)));
            } else {
                deleted.push((u, v));
            }
        }

        // Which sources' trees do the flips actually touch? A deleted
        // edge matters iff it is a tree edge; an inserted edge matters
        // iff it strictly shortens one endpoint (ties change neither
        // distances nor, under first-relaxer-wins, this tree's prices).
        let s = &mut self.scratch;
        s.affected.clear();
        for src in 0..n {
            let row = &anchor.dist[src * n..(src + 1) * n];
            let par = &anchor.parent[src * n..(src + 1) * n];
            let touched = deleted.iter().any(|&(u, v)| par[v] == u || par[u] == v)
                || inserted.iter().any(|&(u, v, w)| row[u] + w < row[v] || row[v] + w < row[u]);
            if touched {
                if s.affected.len() >= self.max_affected {
                    return Ok(None);
                }
                s.affected.push(src);
            }
        }

        let g = child.to_graph();
        s.csr.build(&g, dist_fn);
        let traffic = self.ctx.traffic_fn();
        let affected = s.affected.len();
        s.rdist.clear();
        s.rdist.resize(affected * n, 0.0);
        s.rparent.clear();
        s.rparent.resize(affected * n, 0);
        s.rweighted.clear();
        s.rweighted.resize(affected, 0.0);
        for k in 0..affected {
            let src = s.affected[k];
            s.wdist.clear();
            s.wdist.extend_from_slice(&anchor.dist[src * n..(src + 1) * n]);
            s.wparent.clear();
            s.wparent.extend_from_slice(&anchor.parent[src * n..(src + 1) * n]);
            repair_source(
                src,
                &mut s.wdist,
                &mut s.wparent,
                &s.csr,
                &deleted,
                &inserted,
                &mut s.status,
                &mut s.chain,
                &mut s.heap,
            );
            s.rweighted[k] = source_weighted_demand(src, &s.wdist, traffic, &mut s.demand)?;
            s.rdist[k * n..(k + 1) * n].copy_from_slice(&s.wdist);
            s.rparent[k * n..(k + 1) * n].copy_from_slice(&s.wparent);
        }

        // Every repair priced successfully — commit.
        for k in 0..affected {
            let src = s.affected[k];
            anchor.dist[src * n..(src + 1) * n].copy_from_slice(&s.rdist[k * n..(k + 1) * n]);
            anchor.parent[src * n..(src + 1) * n].copy_from_slice(&s.rparent[k * n..(k + 1) * n]);
            anchor.per_source[src] = s.rweighted[k];
        }
        anchor.topology = child.clone();
        // Fold per-source prices in ascending source order — the same
        // summation tree as the full pass.
        let mut weighted = 0.0f64;
        for &w in &anchor.per_source {
            weighted += w;
        }
        let total = total_from_parts(&g, dist_fn, weighted, &self.params);
        anchor.total = total;
        Ok(Some(total))
    }
}

/// `k0·|E| + k1·Σℓ + k2·Σt·L + k3·hubs`, with `|E|` and `Σℓ` accumulated
/// in ascending edge order exactly as `evaluate_total` accumulates them.
fn total_from_parts(
    g: &Graph,
    dist: impl Fn(usize, usize) -> f64,
    weighted: f64,
    params: &CostParams,
) -> f64 {
    let mut links = 0usize;
    let mut total_length = 0.0f64;
    for (u, v) in g.edges() {
        links += 1;
        total_length += dist(u, v);
    }
    let hubs = (0..g.n()).filter(|&v| g.degree(v) > 1).count();
    params.k0 * links as f64
        + params.k1 * total_length
        + params.k2 * weighted
        + params.k3 * hubs as f64
}

/// Repairs one source's shortest-path tree in place (see the module docs
/// for why the result is bit-identical to a fresh Dijkstra).
#[allow(clippy::too_many_arguments)]
fn repair_source(
    source: usize,
    wdist: &mut [f64],
    wparent: &mut [usize],
    csr: &Csr,
    deleted: &[(usize, usize)],
    inserted: &[(usize, usize, f64)],
    status: &mut Vec<u8>,
    chain: &mut Vec<usize>,
    heap: &mut BinaryHeap<MinItem>,
) {
    let n = wdist.len();
    status.clear();
    status.resize(n, 0);
    status[source] = 1;
    // Orphan roots: the child endpoint of every deleted tree edge.
    for &(u, v) in deleted {
        if wparent[v] == u {
            status[v] = 2;
        } else if wparent[u] == v {
            status[u] = 2;
        }
    }
    // Classify everyone by memoized parent walks: a vertex is an orphan
    // iff its tree path hits an orphan root (previously unreachable
    // vertices re-enter as orphans too, so insertions can connect them).
    for x0 in 0..n {
        if status[x0] != 0 {
            continue;
        }
        chain.clear();
        let mut x = x0;
        while status[x] == 0 {
            if !wdist[x].is_finite() || wparent[x] == usize::MAX {
                status[x] = 2;
                break;
            }
            chain.push(x);
            x = wparent[x];
        }
        let verdict = status[x];
        for &c in chain.iter() {
            status[c] = verdict;
        }
    }
    heap.clear();
    for x in 0..n {
        if status[x] == 2 {
            wdist[x] = f64::INFINITY;
            wparent[x] = usize::MAX;
        }
    }
    // Seed each orphan from its surviving (non-orphan) neighbors in the
    // new graph — equivalent to those neighbors relaxing it.
    for x in 0..n {
        if status[x] != 2 {
            continue;
        }
        for k in csr.start[x]..csr.start[x + 1] {
            let y = csr.node[k];
            if status[y] == 2 {
                continue;
            }
            let nd = wdist[y] + csr.len[k];
            if nd < wdist[x] {
                wdist[x] = nd;
                wparent[x] = y;
            }
        }
        if wdist[x].is_finite() {
            heap.push(MinItem { dist: wdist[x], node: x });
        }
    }
    // Inserted edges can strictly shorten surviving labels; relax both
    // directions (orphan endpoints are already at ∞ or seeded above).
    for &(u, v, w) in inserted {
        if wdist[u] + w < wdist[v] {
            wdist[v] = wdist[u] + w;
            wparent[v] = u;
            heap.push(MinItem { dist: wdist[v], node: v });
        }
        if wdist[v] + w < wdist[u] {
            wdist[u] = wdist[v] + w;
            wparent[u] = v;
            heap.push(MinItem { dist: wdist[u], node: u });
        }
    }
    // Lazy-deletion propagation to the relaxation fixpoint. Decrease-only
    // relaxation suffices: surviving labels never need to grow (their
    // tree paths survive the deletions by construction of the orphan
    // set), and orphans restart from ∞.
    while let Some(MinItem { dist: d, node: x }) = heap.pop() {
        if d > wdist[x] {
            continue;
        }
        for k in csr.start[x]..csr.start[x + 1] {
            let y = csr.node[k];
            let nd = wdist[x] + csr.len[k];
            if nd < wdist[y] {
                wdist[y] = nd;
                wparent[y] = x;
                heap.push(MinItem { dist: nd, node: y });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate_total;
    use cold_context::ContextConfig;
    use cold_graph::components::matrix_is_connected;
    use cold_graph::mst::mst_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ctx(n: usize, seed: u64) -> Context {
        ContextConfig::paper_default(n).generate(seed)
    }

    /// Flips one random pair, preferring flips that keep the topology
    /// connected; returns the flipped pair index.
    fn random_connected_flip(topo: &mut AdjacencyMatrix, rng: &mut StdRng) -> usize {
        loop {
            let pair = rng.gen_range(0..topo.pair_count());
            let had = topo.bit(pair);
            topo.set_bit(pair, !had);
            if !had || matrix_is_connected(topo) {
                return pair;
            }
            topo.set_bit(pair, true); // removal disconnected; try again
        }
    }

    #[test]
    fn full_path_matches_evaluate_total_bit_for_bit() {
        let ctx = ctx(10, 3);
        let params = CostParams::paper(4e-4, 10.0);
        let mut de = DeltaEval::new(&ctx, params);
        let mst = mst_matrix(10, ctx.distance_fn());
        let clique = AdjacencyMatrix::complete(10);
        for topo in [&mst, &clique, &mst] {
            let full = evaluate_total(topo, &ctx, &params).unwrap();
            // Force the full path by clearing the anchor each time.
            de.anchor = None;
            assert_eq!(de.eval(topo, None).unwrap(), full);
        }
        assert_eq!(de.full_evals(), 3);
        assert_eq!(de.delta_evals(), 0);
    }

    #[test]
    fn mutation_chain_is_bit_identical_to_full_reevaluation() {
        let ctx = ctx(14, 7);
        let params = CostParams::paper(2e-4, 6.0);
        // Generous thresholds: at n = 14 a single flip routinely touches
        // more than n/2 source trees, and this test wants the repair path.
        let mut de = DeltaEval::with_limits(&ctx, params, 32, 14);
        let mut topo = mst_matrix(14, ctx.distance_fn());
        let mut rng = StdRng::seed_from_u64(11);
        for step in 0..60 {
            let prev = topo.clone();
            random_connected_flip(&mut topo, &mut rng);
            let expected = evaluate_total(&topo, &ctx, &params).unwrap();
            let got = de.eval(&topo, Some(&prev)).unwrap();
            assert_eq!(got, expected, "step {step} diverged from the full evaluation");
        }
        assert!(de.delta_evals() >= 50, "chain of single flips must mostly delta");
    }

    #[test]
    fn duplicate_of_anchor_is_served_from_cached_total() {
        let ctx = ctx(8, 1);
        let params = CostParams::paper(1e-4, 10.0);
        let mut de = DeltaEval::new(&ctx, params);
        let topo = mst_matrix(8, ctx.distance_fn());
        let a = de.eval(&topo, None).unwrap();
        let b = de.eval(&topo, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(de.full_evals(), 1);
        assert_eq!(de.delta_evals(), 1, "zero-flip duplicate counts as a delta");
    }

    #[test]
    fn oversized_diff_falls_back_to_full_evaluation() {
        let ctx = ctx(9, 5);
        let params = CostParams::paper(1e-4, 10.0);
        let mut de = DeltaEval::with_limits(&ctx, params, 2, 100);
        let mst = mst_matrix(9, ctx.distance_fn());
        let clique = AdjacencyMatrix::complete(9);
        de.eval(&mst, None).unwrap();
        // MST → clique differs by far more than 2 pairs.
        let expected = evaluate_total(&clique, &ctx, &params).unwrap();
        assert_eq!(de.eval(&clique, None).unwrap(), expected);
        assert_eq!(de.full_evals(), 2);
        assert_eq!(de.delta_evals(), 0);
    }

    #[test]
    fn tight_affected_threshold_forces_fallback_without_changing_results() {
        let ctx = ctx(12, 9);
        let params = CostParams::paper(3e-4, 8.0);
        // max_affected = 1: almost every flip touches more than one
        // source, so this session nearly always takes the full path.
        let mut de = DeltaEval::with_limits(&ctx, params, 32, 1);
        let mut topo = mst_matrix(12, ctx.distance_fn());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let prev = topo.clone();
            random_connected_flip(&mut topo, &mut rng);
            let expected = evaluate_total(&topo, &ctx, &params).unwrap();
            assert_eq!(de.eval(&topo, Some(&prev)).unwrap(), expected);
        }
        assert!(de.full_evals() >= 15, "threshold of 1 must mostly fall back");
    }

    #[test]
    fn base_hint_reanchors_siblings_that_drifted_from_the_anchor() {
        let ctx = ctx(10, 13);
        let params = CostParams::paper(1e-4, 10.0);
        // max_flips = 1: two different single-flip children of the same
        // parent differ from each other by 2 > 1, so the second child can
        // only be delta-evaluated by re-anchoring on the shared parent.
        let mut de = DeltaEval::with_limits(&ctx, params, 1, 100);
        let parent = AdjacencyMatrix::complete(10);
        de.eval(&parent, None).unwrap();
        let mut child_a = parent.clone();
        child_a.set_edge(0, 1, false);
        let mut child_b = parent.clone();
        child_b.set_edge(2, 3, false);
        let ea = evaluate_total(&child_a, &ctx, &params).unwrap();
        let eb = evaluate_total(&child_b, &ctx, &params).unwrap();
        assert_eq!(de.eval(&child_a, Some(&parent)).unwrap(), ea);
        assert_eq!(de.eval(&child_b, Some(&parent)).unwrap(), eb);
        assert_eq!(de.delta_evals(), 2, "both children delta-evaluate");
        assert_eq!(de.full_evals(), 1, "only the first parent evaluation is a request-level full");
        assert_eq!(de.reanchors(), 1, "child_b re-anchored on the shared parent");
    }

    #[test]
    fn disconnection_is_an_error_and_the_session_stays_usable() {
        let ctx = ctx(8, 2);
        let params = CostParams::paper(1e-4, 10.0);
        let mut de = DeltaEval::new(&ctx, params);
        let mut topo = mst_matrix(8, ctx.distance_fn());
        let before = de.eval(&topo, None).unwrap();
        // Disconnect a leaf: positive gravity demand makes this an error.
        let leaf_edge = topo.edges().next().unwrap();
        let prev = topo.clone();
        topo.set_edge(leaf_edge.0, leaf_edge.1, false);
        if !matrix_is_connected(&topo) {
            assert!(matches!(de.eval(&topo, Some(&prev)), Err(GraphError::Disconnected)));
        }
        // The anchor survived: re-evaluating the known topology agrees.
        assert_eq!(de.eval(&prev, None).unwrap(), before);
        let wrong_n = AdjacencyMatrix::complete(9);
        assert!(matches!(
            de.eval(&wrong_n, None),
            Err(GraphError::SizeMismatch { expected: 8, actual: 9 })
        ));
    }

    #[test]
    fn repairs_handle_coincident_pops_and_zero_length_edges() {
        use cold_context::gravity::GravityModel;
        use cold_context::population::PopulationKind;
        use cold_context::region::Point;
        // Nodes 1 and 2 coincide → zero-length edge; repairs must keep
        // the equal-distance tie handling of the full run.
        let ctx = Context::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 1.0),
                Point::new(0.0, 2.0),
            ],
            PopulationKind::Constant { value: 1.0 },
            GravityModel::raw(),
            0,
        );
        let params = CostParams::new(1.0, 1.0, 0.5, 2.0);
        let mut de = DeltaEval::new(&ctx, params);
        let mut topo = mst_matrix(5, ctx.distance_fn());
        let mut rng = StdRng::seed_from_u64(21);
        de.eval(&topo, None).unwrap();
        for _ in 0..40 {
            let prev = topo.clone();
            random_connected_flip(&mut topo, &mut rng);
            let expected = evaluate_total(&topo, &ctx, &params).unwrap();
            assert_eq!(de.eval(&topo, Some(&prev)).unwrap(), expected);
        }
    }
}
