//! Wire protocol between the distributed coordinator and its workers.
//!
//! Every message travels as one *frame*: a 4-byte big-endian length
//! prefix followed by that many bytes of UTF-8 JSON. Frames are small
//! (the largest is a mid-run GA snapshot) and capped at
//! [`MAX_FRAME_BYTES`] so a corrupt or hostile peer cannot make either
//! side allocate unbounded memory.
//!
//! The protocol is deliberately connection-per-exchange: a worker opens
//! a fresh TCP connection for each request, writes exactly one frame,
//! reads exactly one reply frame, and closes. There is no session state
//! on the wire — all state lives in the coordinator's lease table, keyed
//! by worker name and lease id. This keeps both sides trivially
//! restartable and makes connection drops (including the injected
//! `dist.conn_drop` fault) indistinguishable from any other lost
//! exchange: the worker retries or the lease deadline reclaims the work.

use serde_json::{json, Value};
use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. Generous enough for a GA
/// snapshot of any realistic campaign (populations are tens of
/// individuals over n <= a few hundred nodes) while still bounding a
/// malformed length prefix.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Writes one length-prefixed JSON frame.
///
/// # Errors
/// Any I/O error from the underlying stream, or `InvalidData` if the
/// encoded message exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(stream: &mut W, msg: &Msg) -> io::Result<()> {
    let body = serde_json::to_string(&msg.to_value())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap", bytes.len()),
        ));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    stream.write_all(&len)?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// Reads one length-prefixed JSON frame and parses it into a [`Msg`].
///
/// # Errors
/// `UnexpectedEof` on a truncated frame, `InvalidData` on an oversized
/// length prefix, non-UTF-8 payload, invalid JSON, or an unknown
/// message shape.
pub fn read_frame<R: Read>(stream: &mut R) -> io::Result<Msg> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))?;
    Msg::from_value(&value).map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))
}

/// One granted unit of work: run trial `trial` of job `job` with `seed`.
///
/// The grant is self-contained — it carries the full job configuration
/// and (for migrated work) the last uploaded GA snapshot — so a worker
/// needs no other state to execute it. `deadline_ms` tells the worker
/// how long the coordinator will wait before reclaiming the lease;
/// workers treat it as advisory (the coordinator enforces it).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseGrant {
    /// Lease id: 16-hex fingerprint of `{job, trial, seed, attempt}`.
    pub lease: String,
    /// Job id the trial belongs to.
    pub job: String,
    /// Trial index within the campaign.
    pub trial: usize,
    /// Exact RNG seed for this trial (primary or salted-retry).
    pub seed: u64,
    /// 1-based lease attempt for this (trial, seed) pair.
    pub attempt: usize,
    /// Full `ColdConfig` document for the job.
    pub config: Value,
    /// Lease deadline in milliseconds (advisory for the worker).
    pub deadline_ms: u64,
    /// Upload a `GaCheckpoint` every this many generations.
    pub ckpt_every: usize,
    /// Trace id of the owning job, so worker-side spans join the same
    /// distributed trace the coordinator journals under.
    pub trace_id: String,
    /// Mid-run GA snapshot from a previous holder of this trial, if one
    /// was uploaded before that worker died. Resuming from it is
    /// bit-identical to never having been interrupted.
    pub snapshot: Option<Value>,
}

impl LeaseGrant {
    fn to_value(&self) -> Value {
        json!({
            "type": "lease_grant",
            "lease": self.lease,
            "job": self.job,
            "trial": self.trial,
            "seed": self.seed,
            "attempt": self.attempt,
            "config": self.config,
            "deadline_ms": self.deadline_ms,
            "ckpt_every": self.ckpt_every,
            "trace_id": self.trace_id,
            "snapshot": match &self.snapshot {
                Some(s) => s.clone(),
                None => Value::Null,
            },
        })
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(Self {
            lease: str_field(v, "lease")?,
            job: str_field(v, "job")?,
            trial: usize_field(v, "trial")?,
            seed: u64_field(v, "seed")?,
            attempt: usize_field(v, "attempt")?,
            config: v.get("config").cloned().ok_or("lease_grant: `config` missing")?,
            deadline_ms: u64_field(v, "deadline_ms")?,
            ckpt_every: usize_field(v, "ckpt_every")?,
            trace_id: str_field(v, "trace_id")?,
            snapshot: match v.get("snapshot") {
                None | Some(Value::Null) => None,
                Some(s) => Some(s.clone()),
            },
        })
    }
}

/// Every message either side can put on the wire.
///
/// Requests (worker -> coordinator): `Hello`, `Heartbeat`,
/// `LeaseRequest`, `TrialCheckpoint`, `TrialResult`, `TrialError`,
/// `Bye`. Replies (coordinator -> worker): `HelloOk`, `HeartbeatOk`,
/// `LeaseGrant` / `NoWork` / `Drain`, `CheckpointOk`, `ResultOk`,
/// `ByeOk`, `Error`.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker registration (idempotent; re-sent after eviction).
    Hello {
        /// Worker name.
        worker: String,
    },
    /// Registration accepted.
    HelloOk,
    /// Liveness beat; also the drain side-channel.
    Heartbeat {
        /// Worker name.
        worker: String,
    },
    /// Beat acknowledged; `drain` asks the worker to finish its current
    /// trial and exit.
    HeartbeatOk {
        /// Worker should stop requesting leases and exit.
        drain: bool,
    },
    /// Pull-based work request: the worker is idle and wants a trial.
    LeaseRequest {
        /// Worker name.
        worker: String,
    },
    /// Work granted.
    Grant(LeaseGrant),
    /// Nothing runnable right now; retry after `backoff_ms`.
    NoWork {
        /// Suggested wait before the next `LeaseRequest`.
        backoff_ms: u64,
    },
    /// Coordinator is draining: do not request more work, exit cleanly.
    Drain,
    /// Mid-run GA snapshot upload for a held lease.
    TrialCheckpoint {
        /// Worker name.
        worker: String,
        /// Lease the snapshot belongs to.
        lease: String,
        /// The `GaCheckpoint` document.
        snapshot: Value,
    },
    /// Snapshot accepted (or ignored for an expired lease — harmless).
    CheckpointOk,
    /// Completed trial upload. Idempotent: duplicates (same job+trial)
    /// are acknowledged with `ResultOk { duplicate: true }` and dropped.
    TrialResult {
        /// Worker name.
        worker: String,
        /// Lease the result fulfills (may already be expired).
        lease: String,
        /// Job id (lets the coordinator accept results from expired
        /// leases it no longer tracks).
        job: String,
        /// Trial index.
        trial: usize,
        /// Seed the trial ran with.
        seed: u64,
        /// The `TrialRecord` document.
        record: Value,
    },
    /// Result accepted; `duplicate` means another upload won the race.
    ResultOk {
        /// The trial was already complete when this upload arrived.
        duplicate: bool,
    },
    /// The trial failed deterministically on the worker; requeue it now
    /// instead of waiting out the lease deadline.
    TrialError {
        /// Worker name.
        worker: String,
        /// Lease that failed.
        lease: String,
        /// Stringified error.
        error: String,
    },
    /// Graceful sign-off; outstanding leases (if any) are requeued.
    Bye {
        /// Worker name.
        worker: String,
    },
    /// Sign-off acknowledged.
    ByeOk,
    /// Protocol-level rejection (malformed payload, unknown lease on a
    /// checkpoint, ...). The exchange still completed; the worker logs
    /// and moves on.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Msg {
    /// Converts the message into its tagged JSON object form.
    pub fn to_value(&self) -> Value {
        match self {
            Msg::Hello { worker } => json!({"type": "hello", "worker": worker}),
            Msg::HelloOk => json!({"type": "hello_ok"}),
            Msg::Heartbeat { worker } => json!({"type": "heartbeat", "worker": worker}),
            Msg::HeartbeatOk { drain } => json!({"type": "heartbeat_ok", "drain": drain}),
            Msg::LeaseRequest { worker } => json!({"type": "lease_request", "worker": worker}),
            Msg::Grant(grant) => grant.to_value(),
            Msg::NoWork { backoff_ms } => json!({"type": "no_work", "backoff_ms": backoff_ms}),
            Msg::Drain => json!({"type": "drain"}),
            Msg::TrialCheckpoint { worker, lease, snapshot } => json!({
                "type": "trial_checkpoint",
                "worker": worker,
                "lease": lease,
                "snapshot": snapshot,
            }),
            Msg::CheckpointOk => json!({"type": "checkpoint_ok"}),
            Msg::TrialResult { worker, lease, job, trial, seed, record } => json!({
                "type": "trial_result",
                "worker": worker,
                "lease": lease,
                "job": job,
                "trial": trial,
                "seed": seed,
                "record": record,
            }),
            Msg::ResultOk { duplicate } => json!({"type": "result_ok", "duplicate": duplicate}),
            Msg::TrialError { worker, lease, error } => json!({
                "type": "trial_error",
                "worker": worker,
                "lease": lease,
                "error": error,
            }),
            Msg::Bye { worker } => json!({"type": "bye", "worker": worker}),
            Msg::ByeOk => json!({"type": "bye_ok"}),
            Msg::Error { message } => json!({"type": "error", "message": message}),
        }
    }

    /// Parses a message from its tagged JSON object form.
    ///
    /// # Errors
    /// A human-readable description of the first violated rule.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("message: `type` missing or not a string")?;
        match kind {
            "hello" => Ok(Msg::Hello { worker: str_field(v, "worker")? }),
            "hello_ok" => Ok(Msg::HelloOk),
            "heartbeat" => Ok(Msg::Heartbeat { worker: str_field(v, "worker")? }),
            "heartbeat_ok" => Ok(Msg::HeartbeatOk { drain: bool_field(v, "drain")? }),
            "lease_request" => Ok(Msg::LeaseRequest { worker: str_field(v, "worker")? }),
            "lease_grant" => Ok(Msg::Grant(LeaseGrant::from_value(v)?)),
            "no_work" => Ok(Msg::NoWork { backoff_ms: u64_field(v, "backoff_ms")? }),
            "drain" => Ok(Msg::Drain),
            "trial_checkpoint" => Ok(Msg::TrialCheckpoint {
                worker: str_field(v, "worker")?,
                lease: str_field(v, "lease")?,
                snapshot: v
                    .get("snapshot")
                    .cloned()
                    .ok_or("trial_checkpoint: `snapshot` missing")?,
            }),
            "checkpoint_ok" => Ok(Msg::CheckpointOk),
            "trial_result" => Ok(Msg::TrialResult {
                worker: str_field(v, "worker")?,
                lease: str_field(v, "lease")?,
                job: str_field(v, "job")?,
                trial: usize_field(v, "trial")?,
                seed: u64_field(v, "seed")?,
                record: v.get("record").cloned().ok_or("trial_result: `record` missing")?,
            }),
            "result_ok" => Ok(Msg::ResultOk { duplicate: bool_field(v, "duplicate")? }),
            "trial_error" => Ok(Msg::TrialError {
                worker: str_field(v, "worker")?,
                lease: str_field(v, "lease")?,
                error: str_field(v, "error")?,
            }),
            "bye" => Ok(Msg::Bye { worker: str_field(v, "worker")? }),
            "bye_ok" => Ok(Msg::ByeOk),
            "error" => Ok(Msg::Error { message: str_field(v, "message")? }),
            other => Err(format!("unknown message type `{other}`")),
        }
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("field `{key}` missing or not a string"))
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|u| u as usize)
        .ok_or_else(|| format!("field `{key}` missing or not a nonnegative integer"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("field `{key}` missing or not a nonnegative integer"))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("field `{key}` missing or not a boolean"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Msg) {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, &msg).expect("write");
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).expect("read");
        assert_eq!(back, msg);
    }

    #[test]
    fn every_message_round_trips_through_a_frame() {
        round_trip(Msg::Hello { worker: "w1".into() });
        round_trip(Msg::HelloOk);
        round_trip(Msg::Heartbeat { worker: "w1".into() });
        round_trip(Msg::HeartbeatOk { drain: true });
        round_trip(Msg::LeaseRequest { worker: "w1".into() });
        round_trip(Msg::Grant(LeaseGrant {
            lease: "1ea5e1ea5e1ea5e1".into(),
            job: "ab12cd34ef56ab78".into(),
            trial: 2,
            seed: 0xDEAD_BEEF,
            attempt: 3,
            config: json!({"n": 12}),
            deadline_ms: 120_000,
            ckpt_every: 5,
            trace_id: "ab12cd34ef56ab78".into(),
            snapshot: Some(json!({"generation": 7})),
        }));
        round_trip(Msg::NoWork { backoff_ms: 200 });
        round_trip(Msg::Drain);
        round_trip(Msg::TrialCheckpoint {
            worker: "w1".into(),
            lease: "1ea5e1ea5e1ea5e1".into(),
            snapshot: json!({"generation": 7}),
        });
        round_trip(Msg::CheckpointOk);
        round_trip(Msg::TrialResult {
            worker: "w1".into(),
            lease: "1ea5e1ea5e1ea5e1".into(),
            job: "ab12cd34ef56ab78".into(),
            trial: 2,
            seed: 99,
            record: json!({"trial": 2}),
        });
        round_trip(Msg::ResultOk { duplicate: false });
        round_trip(Msg::TrialError {
            worker: "w1".into(),
            lease: "1ea5e1ea5e1ea5e1".into(),
            error: "boom".into(),
        });
        round_trip(Msg::Bye { worker: "w1".into() });
        round_trip(Msg::ByeOk);
        round_trip(Msg::Error { message: "nope".into() });
    }

    #[test]
    fn absent_snapshot_travels_as_null_and_parses_back_to_none() {
        let grant = LeaseGrant {
            lease: "1ea5e1ea5e1ea5e1".into(),
            job: "ab12cd34ef56ab78".into(),
            trial: 0,
            seed: 1,
            attempt: 1,
            config: json!({}),
            deadline_ms: 1000,
            ckpt_every: 5,
            trace_id: "ab12cd34ef56ab78".into(),
            snapshot: None,
        };
        let v = Msg::Grant(grant.clone()).to_value();
        assert!(v.get("snapshot").expect("snapshot key").is_null());
        assert_eq!(Msg::from_value(&v).expect("parse"), Msg::Grant(grant));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"junk");
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_reports_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Msg::HelloOk).expect("write");
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_message_type_is_invalid_data() {
        let mut buf = Vec::new();
        let body = serde_json::to_string(&json!({"type": "warp"})).expect("json");
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body.as_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
