//! Regenerates the §5 brute-force optimality validation.
fn main() {
    let opts = cold_bench::ExpOptions::from_args();
    let doc = cold_bench::experiments::sec5::run(&opts);
    opts.write_json("sec5_bruteforce", &doc);
}
