//! Exporters: hand the synthesized network to simulators and viewers.
//!
//! Requirement 5 (§1) is that COLD emits a *network* with "details such as
//! link capacity, distances, and routing". These exporters serialize that
//! artifact in three interoperable formats:
//!
//! - [`to_dot`] — Graphviz, for quick visual inspection;
//! - [`to_graphml`] — GraphML with capacity/length/load attributes, the
//!   lingua franca of ns-3/OMNeT++ tooling and the Topology Zoo itself;
//! - [`to_json`] — a self-describing JSON document including PoP
//!   coordinates, populations, links and cost breakdown;
//! - [`to_svg`] — a standalone vector rendering (hubs highlighted, link
//!   width ∝ capacity) viewable in any browser without tooling.

use cold_context::Context;
use cold_cost::Network;
use serde::Serialize;
use std::fmt::Write as _;

/// Graphviz DOT rendering (undirected; PoPs positioned by their
/// coordinates, links labeled with capacity).
pub fn to_dot(net: &Network, ctx: &Context) -> String {
    let mut out = String::new();
    out.push_str("graph cold {\n  layout=neato;\n  node [shape=circle];\n");
    for v in 0..net.n() {
        let p = ctx.positions[v];
        let hub = net.topology.degree(v) > 1;
        let _ = writeln!(
            out,
            "  n{v} [pos=\"{:.4},{:.4}!\", label=\"{v}\"{}];",
            p.x * 10.0,
            p.y * 10.0,
            if hub { ", style=filled, fillcolor=lightblue" } else { "" }
        );
    }
    for l in &net.links {
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{:.1}\", len={:.4}];",
            l.u, l.v, l.capacity, l.length
        );
    }
    out.push_str("}\n");
    out
}

/// GraphML rendering with typed link attributes.
pub fn to_graphml(net: &Network, ctx: &Context) -> String {
    let mut out = String::new();
    out.push_str(concat!(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n",
        "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n",
        "  <key id=\"x\" for=\"node\" attr.name=\"x\" attr.type=\"double\"/>\n",
        "  <key id=\"y\" for=\"node\" attr.name=\"y\" attr.type=\"double\"/>\n",
        "  <key id=\"pop\" for=\"node\" attr.name=\"population\" attr.type=\"double\"/>\n",
        "  <key id=\"len\" for=\"edge\" attr.name=\"length\" attr.type=\"double\"/>\n",
        "  <key id=\"cap\" for=\"edge\" attr.name=\"capacity\" attr.type=\"double\"/>\n",
        "  <key id=\"load\" for=\"edge\" attr.name=\"load\" attr.type=\"double\"/>\n",
        "  <graph id=\"G\" edgedefault=\"undirected\">\n",
    ));
    for v in 0..net.n() {
        let p = ctx.positions[v];
        let _ = writeln!(
            out,
            "    <node id=\"n{v}\"><data key=\"x\">{}</data><data key=\"y\">{}</data><data key=\"pop\">{}</data></node>",
            p.x, p.y, ctx.populations[v]
        );
    }
    for (i, l) in net.links.iter().enumerate() {
        let _ = writeln!(
            out,
            "    <edge id=\"e{i}\" source=\"n{}\" target=\"n{}\"><data key=\"len\">{}</data><data key=\"cap\">{}</data><data key=\"load\">{}</data></edge>",
            l.u, l.v, l.length, l.capacity, l.load
        );
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

/// JSON document schema for [`to_json`].
#[derive(Debug, Serialize)]
struct JsonNetwork {
    n: usize,
    pops: Vec<JsonPop>,
    links: Vec<JsonLink>,
    cost: JsonCost,
}

#[derive(Debug, Serialize)]
struct JsonPop {
    id: usize,
    x: f64,
    y: f64,
    population: f64,
    is_hub: bool,
}

#[derive(Debug, Serialize)]
struct JsonLink {
    source: usize,
    target: usize,
    length: f64,
    load: f64,
    capacity: f64,
}

#[derive(Debug, Serialize)]
struct JsonCost {
    existence: f64,
    length: f64,
    bandwidth: f64,
    hub: f64,
    total: f64,
}

/// Standalone SVG rendering: PoPs at their coordinates (hubs highlighted,
/// radius scaled by population), links with width proportional to
/// installed capacity. No external tooling needed — open in any browser.
pub fn to_svg(net: &Network, ctx: &Context) -> String {
    const CANVAS: f64 = 640.0;
    const MARGIN: f64 = 40.0;
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &ctx.positions {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
    let sx = |x: f64| MARGIN + (x - min_x) / span * (CANVAS - 2.0 * MARGIN);
    let sy = |y: f64| CANVAS - MARGIN - (y - min_y) / span * (CANVAS - 2.0 * MARGIN);
    let max_cap = net.links.iter().map(|l| l.capacity).fold(0.0f64, f64::max).max(1e-9);
    let max_pop = ctx.populations.iter().cloned().fold(0.0f64, f64::max).max(1e-9);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{CANVAS}\" height=\"{CANVAS}\" viewBox=\"0 0 {CANVAS} {CANVAS}\">"
    );
    out.push_str("  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    for l in &net.links {
        let (a, b) = (ctx.positions[l.u], ctx.positions[l.v]);
        let width = 0.75 + 3.25 * l.capacity / max_cap;
        let _ = writeln!(
            out,
            "  <line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#607080\" stroke-width=\"{width:.2}\" stroke-opacity=\"0.8\"/>",
            sx(a.x), sy(a.y), sx(b.x), sy(b.y)
        );
    }
    for (v, p) in ctx.positions.iter().enumerate() {
        let hub = net.topology.degree(v) > 1;
        let r = 4.0 + 6.0 * (ctx.populations[v] / max_pop).sqrt();
        let fill = if hub { "#2b6cb0" } else { "#a0aec0" };
        let _ = writeln!(
            out,
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{r:.1}\" fill=\"{fill}\" stroke=\"#1a202c\"/>",
            sx(p.x),
            sy(p.y)
        );
        let _ = writeln!(
            out,
            "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"middle\" fill=\"#1a202c\">{v}</text>",
            sx(p.x),
            sy(p.y) - r - 2.0
        );
    }
    out.push_str("</svg>\n");
    out
}

/// JSON rendering (pretty-printed).
pub fn to_json(net: &Network, ctx: &Context) -> String {
    let doc = JsonNetwork {
        n: net.n(),
        pops: (0..net.n())
            .map(|v| JsonPop {
                id: v,
                x: ctx.positions[v].x,
                y: ctx.positions[v].y,
                population: ctx.populations[v],
                is_hub: net.topology.degree(v) > 1,
            })
            .collect(),
        links: net
            .links
            .iter()
            .map(|l| JsonLink {
                source: l.u,
                target: l.v,
                length: l.length,
                load: l.load,
                capacity: l.capacity,
            })
            .collect(),
        cost: JsonCost {
            existence: net.cost.existence,
            length: net.cost.length,
            bandwidth: net.cost.bandwidth,
            hub: net.cost.hub,
            total: net.cost.total(),
        },
    };
    serde_json::to_string_pretty(&doc).expect("serializable")
}

/// Serializes a whole Pareto front — every member's network plus its
/// objective vector, the hypervolume history, and the reference point —
/// as one JSON document. This is the `cold-gen --pareto` output and the
/// `result.json` body of a `mode: pareto` serve job.
pub fn pareto_front_to_json(result: &crate::pareto::ParetoSynthesisResult) -> String {
    let front: Vec<serde_json::Value> = result
        .front
        .iter()
        .map(|m| {
            let network: serde_json::Value =
                serde_json::from_str(&to_json(&m.network, &result.context))
                    .expect("to_json emits valid JSON");
            serde_json::json!({
                "objectives": m.objectives.clone(),
                "network": network,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "mode": "pareto",
        "front_size": result.front.len(),
        "reference": result.reference.clone(),
        "hypervolume": result.hypervolume(),
        "hypervolume_history": result.hypervolume_history.clone(),
        "generations_run": result.generations_run,
        "evaluations": result.evaluations,
        "stop_reason": result.stop_reason.as_str(),
        "front": front,
    });
    serde_json::to_string_pretty(&doc).expect("serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesizer::ColdConfig;

    fn sample() -> (Network, Context) {
        let r = ColdConfig::quick(6, 1e-4, 10.0).synthesize(1);
        (r.network, r.context)
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let (net, ctx) = sample();
        let dot = to_dot(&net, &ctx);
        assert!(dot.starts_with("graph cold {"));
        for v in 0..net.n() {
            assert!(dot.contains(&format!("n{v} [pos=")), "missing node {v}");
        }
        assert_eq!(dot.matches(" -- ").count(), net.link_count());
    }

    #[test]
    fn graphml_is_well_formed_enough() {
        let (net, ctx) = sample();
        let xml = to_graphml(&net, &ctx);
        assert!(xml.contains("<graphml"));
        assert!(xml.ends_with("</graphml>\n"));
        assert_eq!(xml.matches("<node ").count(), net.n());
        assert_eq!(xml.matches("<edge ").count(), net.link_count());
        // Balanced tags.
        assert_eq!(xml.matches("<graph ").count(), 1);
        assert_eq!(xml.matches("</graph>").count(), 1);
    }

    #[test]
    fn svg_contains_all_elements() {
        let (net, ctx) = sample();
        let svg = to_svg(&net, &ctx);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<line ").count(), net.link_count());
        assert_eq!(svg.matches("<circle ").count(), net.n());
        // Coordinates stay on the canvas.
        for cap in svg.split("x1=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=640.0).contains(&x));
        }
    }

    #[test]
    fn json_round_trips_structure() {
        let (net, ctx) = sample();
        let j = to_json(&net, &ctx);
        let v: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        assert_eq!(v["n"], net.n());
        assert_eq!(v["pops"].as_array().unwrap().len(), net.n());
        assert_eq!(v["links"].as_array().unwrap().len(), net.link_count());
        let total = v["cost"]["total"].as_f64().unwrap();
        assert!((total - net.total_cost()).abs() < 1e-9);
    }
}
