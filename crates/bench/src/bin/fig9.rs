//! Regenerates Figures 8b and 9 (CVND and hub count vs k3; both share one
//! sweep, so running either binary writes both files).
fn main() {
    let opts = cold_bench::ExpOptions::from_args();
    for (name, doc) in cold_bench::experiments::hubcost::run(&opts) {
        opts.write_json(&name, &doc);
    }
}
