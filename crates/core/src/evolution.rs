//! Incremental network evolution.
//!
//! §3 of the paper observes that "networks are rarely designed from
//! scratch – they evolve. Operators and managers try to optimize (by
//! reducing costs, or improving performance) but usually do so
//! heuristically." This module models that process: given an *existing*
//! network and a grown context (more PoPs, more traffic), re-optimize
//! where the legacy links are sunk costs — their build-out components
//! (`k0`, `k1`) are discounted, while bandwidth (`k2`) and hub (`k3`)
//! costs remain, since capacity and operations are paid either way.
//!
//! The result quantifies the paper's scaling claim from §8 ("it allows for
//! intuitive and sensible scaling") in the more realistic brown-field
//! setting: how much of the old network survives, and what the cost of
//! organic growth is versus a green-field redesign.

use crate::objective::ColdObjective;
use cold_context::rng::derive_seed;
use cold_context::{Context, Point};
use cold_cost::{CostParams, Network};
use cold_ga::{GaSettings, GeneticAlgorithm, Objective, ObjectiveSession};
use cold_graph::AdjacencyMatrix;
use serde::{Deserialize, Serialize};

/// Evolution settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionConfig {
    /// Fraction of the build-out cost (`k0 + k1·ℓ`) still charged for a
    /// legacy link: `0` = fully sunk (reuse is free), `1` = no discount
    /// (green-field). Typical operator economics sit near 0–0.2.
    pub legacy_cost_fraction: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self { legacy_cost_fraction: 0.1 }
    }
}

/// Objective for brown-field optimization: like COLD's, but legacy links
/// pay only `legacy_cost_fraction` of their `k0`/`k1` components.
#[derive(Debug, Clone)]
pub struct EvolutionObjective<'a> {
    inner: ColdObjective<'a>,
    /// Legacy adjacency, embedded in the grown node set.
    legacy: AdjacencyMatrix,
    cfg: EvolutionConfig,
}

impl<'a> EvolutionObjective<'a> {
    /// Creates the objective. `legacy` must have the same node count as
    /// `ctx` (embed the old network into the grown PoP set first — new
    /// PoPs simply have no legacy links).
    pub fn new(
        ctx: &'a Context,
        params: CostParams,
        legacy: AdjacencyMatrix,
        cfg: EvolutionConfig,
    ) -> Self {
        assert_eq!(legacy.n(), ctx.n(), "legacy topology must be embedded in the grown context");
        assert!(
            (0.0..=1.0).contains(&cfg.legacy_cost_fraction),
            "legacy cost fraction must be in [0, 1]"
        );
        Self { inner: ColdObjective::new(ctx, params), legacy, cfg }
    }

    /// The sunk-cost refund of reused legacy links — a pure function of
    /// the topology, shared by the stateless and session paths so they
    /// stay bit-identical.
    fn refund(&self, topology: &AdjacencyMatrix) -> f64 {
        let params = self.inner.params();
        let refund_rate = 1.0 - self.cfg.legacy_cost_fraction;
        let mut refund = 0.0;
        for (u, v) in self.legacy.edges() {
            if topology.has_edge(u, v) {
                refund += refund_rate * (params.k0 + params.k1 * self.distance(u, v));
            }
        }
        refund
    }
}

impl Objective for EvolutionObjective<'_> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn distance(&self, u: usize, v: usize) -> f64 {
        self.inner.distance(u, v)
    }
    fn cost(&self, topology: &AdjacencyMatrix) -> f64 {
        // Refund the sunk share of build-out costs on reused legacy links.
        self.inner.cost(topology) - self.refund(topology)
    }

    fn session(&self) -> Box<dyn ObjectiveSession + '_> {
        // Delegate to the inner delta session and subtract the refund on
        // top. Without this override the trait default wraps `cost()` in
        // a stateless session, so every brown-field evaluation silently
        // paid for full APSP routing.
        Box::new(EvolutionSession { inner: self.inner.session(), outer: self })
    }

    fn k_nearest(&self, k: usize) -> Vec<Vec<usize>> {
        self.inner.k_nearest(k)
    }
}

/// Per-worker session: the inner objective's incremental evaluation minus
/// the legacy refund, which is cheap (one pass over legacy edges) and
/// recomputed per call. Bit-identical to [`EvolutionObjective::cost`].
struct EvolutionSession<'a> {
    inner: Box<dyn ObjectiveSession + 'a>,
    outer: &'a EvolutionObjective<'a>,
}

impl ObjectiveSession for EvolutionSession<'_> {
    fn cost(&mut self, topology: &AdjacencyMatrix, base: Option<&AdjacencyMatrix>) -> f64 {
        self.inner.cost(topology, base) - self.outer.refund(topology)
    }
    fn delta_evals(&self) -> usize {
        self.inner.delta_evals()
    }
    fn full_evals(&self) -> usize {
        self.inner.full_evals()
    }
}

/// Outcome of one evolution step.
#[derive(Debug, Clone)]
pub struct EvolutionResult {
    /// The evolved network (scored at *full* costs for comparability).
    pub network: Network,
    /// The brown-field objective value (with the legacy discount).
    pub brownfield_cost: f64,
    /// Legacy links kept.
    pub links_kept: usize,
    /// Legacy links retired.
    pub links_retired: usize,
    /// New links built.
    pub links_built: usize,
}

impl EvolutionResult {
    /// Fraction of legacy links that survive the evolution step.
    pub fn retention(&self) -> f64 {
        let legacy = self.links_kept + self.links_retired;
        if legacy == 0 {
            0.0
        } else {
            self.links_kept as f64 / legacy as f64
        }
    }
}

/// Grows a context by appending `extra` new PoPs (fresh locations and
/// populations from the same model), keeping the original PoPs and their
/// populations intact, and rebuilding the gravity matrix.
pub fn grow_context(
    base: &Context,
    config: &cold_context::ContextConfig,
    extra: usize,
    seed: u64,
) -> Context {
    use cold_context::{PointProcess, PopulationModel};
    let mut pos_rng = cold_context::rng::rng_for(seed, 0x67726F);
    let mut pop_rng = cold_context::rng::rng_for(seed, 0x67726F + 1);
    let new_points = config.points.sample(extra, &config.region, &mut pos_rng);
    let mut positions = base.positions.clone();
    positions
        .extend(new_points.into_iter().map(|p| Point::new(p.x * config.scale, p.y * config.scale)));
    let mut populations = base.populations.clone();
    populations.extend(config.population.sample(extra, &mut pop_rng));
    let traffic = config.gravity.traffic_matrix(&populations, Some(&positions));
    Context::new(positions, populations, traffic)
}

/// Evolves `legacy_topology` (defined on the first PoPs of `grown`) into a
/// network serving the grown context.
///
/// The GA is seeded with the natural operator move — keep everything and
/// attach each new PoP to its closest legacy PoP — so the evolved design
/// is at least as good as naive growth.
pub fn evolve(
    grown: &Context,
    legacy_topology: &AdjacencyMatrix,
    params: CostParams,
    ga: GaSettings,
    cfg: EvolutionConfig,
    seed: u64,
) -> EvolutionResult {
    let n_old = legacy_topology.n();
    let n = grown.n();
    assert!(n >= n_old, "grown context must contain the legacy PoPs");
    // Embed legacy links into the grown node set.
    let mut legacy = AdjacencyMatrix::empty(n);
    for (u, v) in legacy_topology.edges() {
        legacy.set_edge(u, v, true);
    }
    // Naive-growth seed: legacy + nearest-attach for new PoPs.
    let mut naive = legacy.clone();
    for v in n_old..n {
        let closest = (0..n_old)
            .min_by(|&a, &b| grown.distance(v, a).total_cmp(&grown.distance(v, b)))
            .expect("legacy network nonempty");
        naive.set_edge(v, closest, true);
    }
    let objective = EvolutionObjective::new(grown, params, legacy.clone(), cfg);
    let engine =
        GeneticAlgorithm::new(&objective, GaSettings { seed: derive_seed(seed, 0xE7), ..ga });
    let result = engine.run_seeded(&[naive]);
    let best = result.best.topology;
    let mut kept = 0usize;
    let mut retired = 0usize;
    for (u, v) in legacy.edges() {
        if best.has_edge(u, v) {
            kept += 1;
        } else {
            retired += 1;
        }
    }
    let built = best.edge_count() - kept;
    let network = Network::build(best, grown, params).expect("GA output connected");
    EvolutionResult {
        network,
        brownfield_cost: result.best.cost,
        links_kept: kept,
        links_retired: retired,
        links_built: built,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColdConfig;

    fn quick_setup(
        n0: usize,
        extra: usize,
        seed: u64,
    ) -> (ColdConfig, Context, AdjacencyMatrix, Context) {
        let cfg = ColdConfig::quick(n0, 1e-4, 10.0);
        let base = cfg.synthesize(seed);
        let grown = grow_context(&base.context, &cfg.context, extra, seed + 1);
        (cfg, base.context, base.network.topology.clone(), grown)
    }

    #[test]
    fn grow_context_preserves_existing_pops() {
        let (_, base_ctx, _, grown) = quick_setup(8, 4, 1);
        assert_eq!(grown.n(), 12);
        assert_eq!(&grown.positions[..8], &base_ctx.positions[..]);
        assert_eq!(&grown.populations[..8], &base_ctx.populations[..]);
        // Traffic includes new pairs.
        assert!(grown.traffic.total() > base_ctx.traffic.total());
    }

    #[test]
    fn evolution_keeps_most_legacy_links_when_sunk() {
        let (cfg, _, legacy, grown) = quick_setup(9, 3, 2);
        let r = evolve(
            &grown,
            &legacy,
            cfg.params,
            cfg.ga,
            EvolutionConfig { legacy_cost_fraction: 0.0 },
            3,
        );
        assert!(
            r.retention() >= 0.5,
            "with fully sunk legacy costs most links should survive, kept {}/{}",
            r.links_kept,
            r.links_kept + r.links_retired
        );
        assert!(r.links_built >= 3, "each new PoP needs at least one link");
        assert!(cold_graph::components::matrix_is_connected(&r.network.topology));
    }

    #[test]
    fn greenfield_fraction_one_matches_plain_objective() {
        let (cfg, _, legacy, grown) = quick_setup(8, 2, 4);
        let obj = EvolutionObjective::new(
            &grown,
            cfg.params,
            {
                let mut l = AdjacencyMatrix::empty(10);
                for (u, v) in legacy.edges() {
                    l.set_edge(u, v, true);
                }
                l
            },
            EvolutionConfig { legacy_cost_fraction: 1.0 },
        );
        let plain = ColdObjective::new(&grown, cfg.params);
        let probe = cold_graph::mst::mst_matrix(10, grown.distance_fn());
        assert!((obj.cost(&probe) - plain.cost(&probe)).abs() < 1e-9);
    }

    #[test]
    fn sunk_costs_make_legacy_links_cheaper() {
        let (cfg, _, legacy, grown) = quick_setup(8, 2, 5);
        let mut embedded = AdjacencyMatrix::empty(10);
        for (u, v) in legacy.edges() {
            embedded.set_edge(u, v, true);
        }
        let obj = EvolutionObjective::new(
            &grown,
            cfg.params,
            embedded.clone(),
            EvolutionConfig { legacy_cost_fraction: 0.0 },
        );
        let plain = ColdObjective::new(&grown, cfg.params);
        // Any topology that reuses a legacy link scores strictly lower.
        let mut naive = embedded.clone();
        for v in 8..10 {
            naive.set_edge(v, 0, true);
        }
        cold_graph::mst::join_components(&mut naive, grown.distance_fn());
        assert!(obj.cost(&naive) < plain.cost(&naive));
    }

    #[test]
    fn brownfield_session_is_bit_identical_and_incremental() {
        // Regression: `EvolutionObjective` used to inherit the stateless
        // default session, so brown-field GA runs did full APSP per eval.
        let (cfg, _, legacy, grown) = quick_setup(8, 2, 8);
        let mut embedded = AdjacencyMatrix::empty(10);
        for (u, v) in legacy.edges() {
            embedded.set_edge(u, v, true);
        }
        let obj = EvolutionObjective::new(
            &grown,
            cfg.params,
            embedded.clone(),
            EvolutionConfig::default(),
        );
        let mut session = obj.session();
        let mut naive = embedded.clone();
        for v in 8..10 {
            naive.set_edge(v, 0, true);
        }
        cold_graph::mst::join_components(&mut naive, grown.distance_fn());
        assert_eq!(session.cost(&naive, None), obj.cost(&naive));
        let mut tweaked = naive.clone();
        tweaked.set_edge(0, 9, !tweaked.has_edge(0, 9));
        cold_graph::mst::join_components(&mut tweaked, grown.distance_fn());
        assert_eq!(session.cost(&tweaked, Some(&naive)), obj.cost(&tweaked));
        assert!(session.delta_evals() > 0, "second eval must take the delta path");
        // And a whole GA run actually exercises the incremental path.
        let settings = GaSettings { seed: 11, generations: 4, ..cfg.ga };
        let engine = GeneticAlgorithm::try_new(&obj, settings).unwrap();
        let result = engine.try_run_traced(&[], None).unwrap();
        assert!(
            result.eval_stats.delta_evals > 0,
            "brown-field run performed no delta evals: {:?}",
            result.eval_stats
        );
    }

    #[test]
    fn evolution_result_accounting_adds_up() {
        let (cfg, _, legacy, grown) = quick_setup(8, 3, 6);
        let r = evolve(&grown, &legacy, cfg.params, cfg.ga, EvolutionConfig::default(), 7);
        assert_eq!(r.links_kept + r.links_retired, legacy.edge_count());
        assert_eq!(r.network.link_count(), r.links_kept + r.links_built);
        assert!((0.0..=1.0).contains(&r.retention()));
    }
}
