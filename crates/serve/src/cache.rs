//! The content-addressed result cache.
//!
//! Layout under the cache directory, one subdirectory per job id (the
//! canonical [`cold::job_fingerprint`] in hex):
//!
//! ```text
//! <cache_dir>/<id>/job.json     — the JobSpec, written at accept time
//! <cache_dir>/<id>/ckpt.json    — the campaign checkpoint (while running)
//! <cache_dir>/<id>/result.json  — the final result document (done jobs)
//! ```
//!
//! `result.json` is written atomically (temp + rename), so its presence
//! *is* the done-ness predicate: a job directory with `job.json` but no
//! `result.json` is unfinished work that a restarted server re-enqueues
//! and resumes from `ckpt.json`.

use crate::job::JobSpec;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A handle on the on-disk cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `dir`.
    ///
    /// # Errors
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self { dir: dir.to_path_buf() })
    }

    /// The job directory for `id`.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.dir.join(id)
    }

    /// The campaign checkpoint path for `id`.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.job_dir(id).join("ckpt.json")
    }

    /// Persists the job spec (accept time).
    ///
    /// # Errors
    /// Propagates I/O failures; the submit handler answers 503.
    pub fn store_spec(&self, id: &str, spec: &JobSpec) -> io::Result<()> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        let text = serde_json::to_string(&spec.to_value()).expect("spec serializes");
        write_atomic(&dir.join("job.json"), text.as_bytes())
    }

    /// The cached result document for `id`, if the job completed.
    pub fn lookup(&self, id: &str) -> Option<String> {
        fs::read_to_string(self.job_dir(id).join("result.json")).ok()
    }

    /// Stores the final result document atomically.
    ///
    /// # Errors
    /// Propagates I/O failures; the worker marks the job failed.
    pub fn store_result(&self, id: &str, doc: &str) -> io::Result<()> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir)?;
        write_atomic(&dir.join("result.json"), doc.as_bytes())
    }

    /// Unfinished jobs left behind by a previous process: directories
    /// with a parseable `job.json` but no `result.json`. Sorted by id so
    /// restart-time requeue order is deterministic.
    pub fn scan_unfinished(&self) -> Vec<(String, JobSpec)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let dir = entry.path();
            if !dir.is_dir() || dir.join("result.json").exists() {
                continue;
            }
            let Ok(text) = fs::read_to_string(dir.join("job.json")) else {
                continue;
            };
            let Ok(spec) = JobSpec::from_json(&text) else {
                continue;
            };
            let id = spec.id();
            // Only trust directories whose name matches the content hash;
            // anything else is a stray file, not an accepted job.
            if dir.file_name().and_then(|n| n.to_str()) == Some(id.as_str()) {
                out.push((id, spec));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Write-then-rename so readers never observe a half-written document.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold::ColdConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cold-serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn results_round_trip_and_gate_doneness() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let spec = JobSpec {
            config: ColdConfig::quick(8, 4e-4, 10.0),
            seed: 1,
            count: 1,
            mode: Default::default(),
        };
        let id = spec.id();

        cache.store_spec(&id, &spec).unwrap();
        assert_eq!(cache.lookup(&id), None, "no result yet");
        assert_eq!(cache.scan_unfinished(), vec![(id.clone(), spec)]);

        cache.store_result(&id, "{\"ok\":true}").unwrap();
        assert_eq!(cache.lookup(&id).as_deref(), Some("{\"ok\":true}"));
        assert!(cache.scan_unfinished().is_empty(), "done jobs are not rescanned");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_ignores_mismatched_and_malformed_directories() {
        let dir = temp_dir("strays");
        let cache = ResultCache::open(&dir).unwrap();
        let spec = JobSpec {
            config: ColdConfig::quick(8, 4e-4, 10.0),
            seed: 2,
            count: 1,
            mode: Default::default(),
        };
        // A spec stored under the wrong id must not be resurrected.
        cache.store_spec("0000000000000000", &spec).unwrap();
        // A directory with garbage instead of a spec is skipped.
        fs::create_dir_all(dir.join("deadbeefdeadbeef")).unwrap();
        fs::write(dir.join("deadbeefdeadbeef/job.json"), "not json").unwrap();
        assert!(cache.scan_unfinished().is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
