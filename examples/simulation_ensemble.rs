//! Ensemble generation for simulation — the paper's primary use case.
//!
//! Generates a statistically varied ensemble of networks (same model,
//! randomized contexts), reports ensemble statistics with bootstrap
//! confidence intervals, fits cost parameters to a target network with
//! ABC, and exports every member as DOT/GraphML/JSON for a simulator.
//!
//! ```sh
//! cargo run --release --example simulation_ensemble -- [out_dir]
//! ```

use cold::abc::{fit, AbcConfig, TargetSummary};
use cold::bootstrap::bootstrap_mean_ci;
use cold::export;
use cold::{ColdConfig, NetworkStats};

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "ensemble_out".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let cfg = ColdConfig::quick(15, 4e-4, 10.0);
    let count = 12;
    println!("synthesizing an ensemble of {count} networks (n = 15)...");
    let ensemble = cfg.ensemble(2014, count);

    // Ensemble statistics with 95% CIs — what a simulation paper would
    // report alongside its results (paper §1 challenge 1).
    for stat in ["average_degree", "cvnd", "diameter", "global_clustering"] {
        let xs: Vec<f64> = ensemble.iter().filter_map(|r| r.stats.get(stat)).collect();
        let ci = bootstrap_mean_ci(&xs, 0.95, 1000, 7);
        println!("  {stat:<18} mean {:.3}  95% CI [{:.3}, {:.3}]", ci.mean, ci.lo, ci.hi);
    }

    // All members are distinct by construction (randomized context).
    let mut distinct = 0;
    for i in 0..ensemble.len() {
        for j in (i + 1)..ensemble.len() {
            if ensemble[i].network.topology != ensemble[j].network.topology {
                distinct += 1;
            }
        }
    }
    println!("  distinct pairs     {distinct}/{}", count * (count - 1) / 2);

    // Export each member in three formats.
    for (i, r) in ensemble.iter().enumerate() {
        let base = format!("{out_dir}/net{i:02}");
        std::fs::write(format!("{base}.dot"), export::to_dot(&r.network, &r.context)).unwrap();
        std::fs::write(format!("{base}.graphml"), export::to_graphml(&r.network, &r.context))
            .unwrap();
        std::fs::write(format!("{base}.json"), export::to_json(&r.network, &r.context)).unwrap();
    }
    println!("\nexported {count} networks x 3 formats to {out_dir}/");

    // ABC: recover cost parameters that reproduce one member's statistics
    // (paper §8 future work — here as a working feature).
    let target_net = &ensemble[0];
    let target = TargetSummary::from_stats(&target_net.stats);
    println!(
        "\nfitting (k2, k3) by ABC to match member 0 (deg {:.2}, cvnd {:.2}, diam {}, gcc {:.3})...",
        target.average_degree, target.cvnd, target.diameter, target.global_clustering
    );
    let abc_cfg = AbcConfig { candidates: 16, trials_per_candidate: 2, ..Default::default() };
    let posterior = fit(&cfg, &target, &abc_cfg, 5);
    println!("accepted posterior samples (best first):");
    for s in posterior.iter().take(4) {
        println!("  k2 = {:>9.2e}  k3 = {:>8.2}  distance {:.3}", s.k2, s.k3, s.distance);
    }
    let truth = (cfg.params.k2, cfg.params.k3);
    println!("ground truth: k2 = {:>9.2e}  k3 = {:>8.2}", truth.0, truth.1);

    // Sanity: every exported network is simulation-ready.
    for r in &ensemble {
        assert!(r.network.plan.max_utilization() <= 1.0 + 1e-9);
        assert!(NetworkStats::compute(&r.network.graph()).is_ok());
    }
    println!("\nall members connected and capacity-feasible");

    // A first simulation on the artifact: single-link failure analysis of
    // member 0 (the kind of protocol/robustness study these ensembles are
    // generated for).
    let report = cold::failure::single_link_failures(&target_net.network, &target_net.context);
    let worst = report.worst().expect("network has links");
    println!("\nfailure analysis of member 0 ({} links):", report.impacts.len());
    println!(
        "  worst link {:?}: strands {:.0}% of traffic, mean stretch {:.2}",
        worst.link,
        100.0 * worst.stranded_traffic_fraction,
        worst.mean_stretch
    );
    println!(
        "  survivable links (no strand, no overload): {:.0}%",
        100.0 * report.survivable_link_fraction()
    );
}
