//! GA vs simulated annealing — quantifying §3.3's design decision.
//!
//! The paper motivates its Genetic Algorithm over "the alternative
//! heuristics" qualitatively (flexibility, seedability, population
//! output). This experiment makes the comparison quantitative on an
//! evaluation-matched budget: SA gets exactly as many objective
//! evaluations as the GA spends, both run on the same contexts, and we
//! report each optimizer's cost relative to the initialized GA.

use crate::{fmt, print_table, ExpOptions};
use cold::bootstrap::bootstrap_mean_ci;
use cold::{ColdConfig, ColdObjective, SynthesisMode};
use cold_context::rng::derive_seed;
use cold_heuristics::{anneal, AnnealingSettings};
use serde_json::json;

/// Runs the comparison.
pub fn run(opts: &ExpOptions) -> serde_json::Value {
    let n = if opts.full { 30 } else { 12 };
    let trials = opts.trials(4, 15);
    let scenarios = [(1e-4, 0.0), (1.6e-3, 0.0), (1e-4, 100.0)];
    let mut rows = Vec::new();
    let mut docs = Vec::new();
    for &(k2, k3) in &scenarios {
        let mut ga_rel = Vec::new();
        let mut sa_rel = Vec::new();
        for t in 0..trials {
            let cfg = ColdConfig {
                ga: opts.ga_settings(),
                mode: SynthesisMode::Initialized,
                ..ColdConfig::paper(n, k2, k3)
            };
            let seed = derive_seed(opts.seed, (k3 as u64) << 24 ^ (k2.to_bits() >> 40) ^ t as u64);
            let ctx = cfg.context.generate(derive_seed(seed, 0xC0));
            let init = cfg.synthesize_in_context(ctx.clone(), seed);
            let plain = ColdConfig { mode: SynthesisMode::GaOnly, ..cfg }
                .synthesize_in_context(ctx.clone(), seed);
            // Evaluation-matched SA budget.
            let objective = ColdObjective::new(&ctx, cfg.params);
            let sa = anneal(
                &objective,
                &AnnealingSettings {
                    steps: plain.evaluations,
                    seed: derive_seed(seed, 0x5A),
                    ..Default::default()
                },
                None,
            );
            let base = init.best_cost();
            ga_rel.push(plain.best_cost() / base);
            sa_rel.push(sa.best_cost / base);
        }
        let ga_ci = bootstrap_mean_ci(&ga_rel, 0.95, 1000, opts.seed ^ 1);
        let sa_ci = bootstrap_mean_ci(&sa_rel, 0.95, 1000, opts.seed ^ 2);
        rows.push(vec![
            fmt(k2),
            fmt(k3),
            format!("{}±{}", fmt(ga_ci.mean), fmt((ga_ci.hi - ga_ci.lo) / 2.0)),
            format!("{}±{}", fmt(sa_ci.mean), fmt((sa_ci.hi - sa_ci.lo) / 2.0)),
        ]);
        docs.push(json!({
            "k2": k2, "k3": k3,
            "plain_ga": {"mean": ga_ci.mean, "lo": ga_ci.lo, "hi": ga_ci.hi},
            "sa": {"mean": sa_ci.mean, "lo": sa_ci.lo, "hi": sa_ci.hi},
        }));
    }
    print_table(
        &format!(
            "GA vs simulated annealing: cost / initialised-GA cost (n = {n}, {trials} trials, evaluation-matched)"
        ),
        &["k2", "k3", "plain GA", "SA"],
        &rows,
    );
    json!({
        "experiment": "ga_vs_sa",
        "n": n,
        "trials": trials,
        "scenarios": docs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_optimizers_stay_in_a_sane_band() {
        let opts = ExpOptions { seed: 13, trials_override: Some(2), ..Default::default() };
        let v = run(&opts);
        for s in v["scenarios"].as_array().unwrap() {
            for opt in ["plain_ga", "sa"] {
                let mean = s[opt]["mean"].as_f64().unwrap();
                assert!(
                    (0.99..2.0).contains(&mean),
                    "{opt} relative cost {mean} outside sanity band"
                );
            }
        }
    }
}
