//! Regenerates Table 1. Usage: `cargo run -p cold-bench --release --bin table1 [--full]`.
fn main() {
    let opts = cold_bench::ExpOptions::from_args();
    let doc = cold_bench::experiments::table1::run(&opts);
    opts.write_json("table1", &doc);
}
