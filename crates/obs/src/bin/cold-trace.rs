//! `cold-trace` — offline analysis of COLD JSONL run journals.
//!
//! ```sh
//! cold-trace summary run.jsonl             # per-trace phase breakdown (tree view)
//! cold-trace top run.jsonl --k 5           # slowest trials and generations
//! cold-trace bench run.jsonl --out BENCH_obs.json
//! cold-trace diff BENCH_obs.json fresh.jsonl --threshold 0.10
//! ```
//!
//! Everything is reconstructed from the journal alone: phase seconds come
//! from the per-generation `eval_seconds`/`breed_seconds`/`repair_seconds`
//! fields, checkpoint I/O from the `core.checkpoint_save`/`ga.checkpoint_sink`
//! spans, and per-trial wall time from the `core.synthesize` spans (joined
//! to their `run_start` events through the shared trace span id).
//!
//! `diff` compares phase *shares* (fractions of attributed time) and
//! deterministic counters rather than raw wall-clock, so a baseline
//! profile checked into CI stays meaningful across machine speeds. Each
//! side may be a journal or a profile JSON written by `bench`. Exits 1
//! when any share shifts by more than the threshold or a work counter
//! grows by more than the threshold, 2 on usage errors.

use std::collections::HashMap;

use cold_obs::{parse_journal_traced, Event};

const USAGE: &str = "cold-trace — analyze COLD JSONL run journals

USAGE:
    cold-trace summary <journal.jsonl>
    cold-trace top <journal.jsonl> [--k <N>]
    cold-trace bench <journal.jsonl> [--out <profile.json>]
    cold-trace diff <baseline> <candidate> [--threshold <FRACTION>]

`diff` inputs may each be a journal or a profile JSON written by `bench`.
";

/// Phase names in display order; `checkpoint` covers save + sink spans.
const PHASES: [&str; 4] = ["eval", "breed", "repair", "checkpoint"];

/// The aggregate a journal reduces to: attributed seconds per phase plus
/// the deterministic work counters a regression diff can trust.
#[derive(Debug, Default, Clone)]
struct Profile {
    /// Seconds per phase, keyed by [`PHASES`] entries.
    phase_seconds: HashMap<&'static str, f64>,
    runs: u64,
    generations: u64,
    evaluations: u64,
    delta_evals: u64,
    full_evals: u64,
    /// `(run id, wall seconds)` per completed trial, unsorted.
    trials: Vec<(String, f64)>,
    /// `(run id, generation, attributed seconds)` per generation.
    gen_seconds: Vec<(String, usize, f64)>,
}

impl Profile {
    fn phase(&self, name: &str) -> f64 {
        self.phase_seconds.get(name).copied().unwrap_or(0.0)
    }

    /// Total attributed seconds across all phases.
    fn attributed(&self) -> f64 {
        PHASES.iter().map(|p| self.phase(p)).sum()
    }

    fn count(&self, name: &str) -> u64 {
        match name {
            "runs" => self.runs,
            "generations" => self.generations,
            "evaluations" => self.evaluations,
            "delta_evals" => self.delta_evals,
            "full_evals" => self.full_evals,
            _ => unreachable!("unknown counter {name}"),
        }
    }
}

const COUNTERS: [&str; 5] = ["runs", "generations", "evaluations", "delta_evals", "full_evals"];

/// Reduces a parsed journal to a [`Profile`]. Trial wall time joins each
/// `core.synthesize` span close to the `run_start` sharing its span id;
/// journals without trace envelopes still profile (trials keep a
/// placeholder run label).
fn profile(events: &[(Event, Option<cold_obs::trace::TraceFields>)]) -> Profile {
    let mut p = Profile::default();
    // span_id of the enclosing trial scope -> run id, from run_start.
    let mut span_to_run: HashMap<&str, &str> = HashMap::new();
    for (event, fields) in events {
        if let (Event::RunStart(r), Some(f)) = (event, fields) {
            span_to_run.insert(f.span_id.as_str(), r.run.as_str());
        }
    }
    for (event, fields) in events {
        match event {
            Event::RunStart(_) => p.runs += 1,
            Event::RunEnd(r) => p.evaluations += r.evaluations as u64,
            Event::Generation(g) => {
                let r = &g.record;
                p.generations += 1;
                p.delta_evals += r.delta_evals as u64;
                p.full_evals += r.full_evals as u64;
                *p.phase_seconds.entry("eval").or_default() += r.eval_seconds;
                *p.phase_seconds.entry("breed").or_default() += r.breed_seconds;
                *p.phase_seconds.entry("repair").or_default() += r.repair_seconds;
                p.gen_seconds.push((
                    g.run.clone(),
                    r.generation,
                    r.eval_seconds + r.breed_seconds + r.repair_seconds,
                ));
            }
            Event::Span(s) => match s.name.as_str() {
                "core.checkpoint_save" | "ga.checkpoint_sink" => {
                    *p.phase_seconds.entry("checkpoint").or_default() += s.seconds;
                }
                "core.synthesize" => {
                    let run = fields
                        .as_ref()
                        .and_then(|f| span_to_run.get(f.span_id.as_str()).copied())
                        .unwrap_or("(untraced trial)");
                    p.trials.push((run.to_string(), s.seconds));
                }
                _ => {}
            },
            _ => {}
        }
    }
    p
}

fn load_journal(path: &str) -> Vec<(Event, Option<cold_obs::trace::TraceFields>)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cold-trace: cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_journal_traced(&text).unwrap_or_else(|e| {
        eprintln!("cold-trace: {path}: {e}");
        std::process::exit(1);
    })
}

/// Loads one `diff` side: a `bench` profile JSON when the file parses as
/// one, otherwise a journal to profile on the fly.
fn load_side(path: &str) -> Profile {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cold-trace: cannot read {path}: {e}");
        std::process::exit(1);
    });
    if let Ok(v) = serde_json::from_str::<serde_json::Value>(&text) {
        if v["profile"] == "cold-trace" {
            let mut p = Profile::default();
            for phase in PHASES {
                if let Some(s) = v["phases"][phase].as_f64() {
                    p.phase_seconds.insert(phase, s);
                }
            }
            let count = |name: &str| v["counts"][name].as_u64().unwrap_or(0);
            p.runs = count("runs");
            p.generations = count("generations");
            p.evaluations = count("evaluations");
            p.delta_evals = count("delta_evals");
            p.full_evals = count("full_evals");
            return p;
        }
    }
    profile(&parse_journal_traced(&text).unwrap_or_else(|e| {
        eprintln!("cold-trace: {path}: neither a bench profile nor a valid journal: {e}");
        std::process::exit(1);
    }))
}

fn profile_json(p: &Profile) -> serde_json::Value {
    serde_json::json!({
        "profile": "cold-trace",
        "phases": {
            "eval": p.phase("eval"),
            "breed": p.phase("breed"),
            "repair": p.phase("repair"),
            "checkpoint": p.phase("checkpoint"),
        },
        "counts": {
            "runs": p.runs,
            "generations": p.generations,
            "evaluations": p.evaluations,
            "delta_evals": p.delta_evals,
            "full_evals": p.full_evals,
        },
    })
}

/// Renders the per-phase tree for one journal. `other` is trial wall
/// time not attributed to any phase (scheduler, bookkeeping, seeding).
fn render_summary(path: &str, p: &Profile) -> String {
    let trial_wall: f64 = p.trials.iter().map(|(_, s)| s).sum();
    let attributed = p.attributed();
    let total = trial_wall.max(attributed);
    let pct = |s: f64| if total > 0.0 { 100.0 * s / total } else { 0.0 };
    let mut out = format!(
        "cold-trace: {path}\n\
         └─ {} trial(s) · {} generation(s) · {} eval(s) (delta {} / full {}) · wall {:.3}s\n",
        p.runs, p.generations, p.evaluations, p.delta_evals, p.full_evals, total
    );
    for phase in PHASES {
        let s = p.phase(phase);
        out.push_str(&format!("   ├─ {phase:<11} {s:>9.3}s  {:>5.1}%\n", pct(s)));
    }
    let other = (total - attributed).max(0.0);
    out.push_str(&format!("   └─ {:<11} {other:>9.3}s  {:>5.1}%\n", "other", pct(other)));
    out
}

fn render_top(p: &Profile, k: usize) -> String {
    let mut trials = p.trials.clone();
    trials.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut gens = p.gen_seconds.clone();
    gens.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut out = format!("top {k} slowest trials:\n");
    for (run, seconds) in trials.iter().take(k) {
        out.push_str(&format!("   {seconds:>9.3}s  run {run}\n"));
    }
    if trials.is_empty() {
        out.push_str("   (no completed trial spans in journal)\n");
    }
    out.push_str(&format!("top {k} slowest generations:\n"));
    for (run, generation, seconds) in gens.iter().take(k) {
        out.push_str(&format!("   {seconds:>9.3}s  run {run} gen {generation}\n"));
    }
    if gens.is_empty() {
        out.push_str("   (no generation records in journal)\n");
    }
    out
}

/// Compares phase shares (absolute delta) and work counters (relative
/// growth) against `threshold`; returns human-readable regressions.
fn diff(base: &Profile, cand: &Profile, threshold: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let (bt, ct) = (base.attributed(), cand.attributed());
    for phase in PHASES {
        let bs = if bt > 0.0 { base.phase(phase) / bt } else { 0.0 };
        let cs = if ct > 0.0 { cand.phase(phase) / ct } else { 0.0 };
        if cs - bs > threshold {
            regressions.push(format!(
                "phase `{phase}` share grew {:.1}% -> {:.1}% (+{:.1} points, threshold {:.1})",
                100.0 * bs,
                100.0 * cs,
                100.0 * (cs - bs),
                100.0 * threshold
            ));
        }
    }
    for counter in COUNTERS {
        let (b, c) = (base.count(counter), cand.count(counter));
        let growth = (c as f64 - b as f64) / (b.max(1) as f64);
        if growth > threshold {
            regressions.push(format!(
                "counter `{counter}` grew {b} -> {c} (+{:.1}%, threshold {:.1}%)",
                100.0 * growth,
                100.0 * threshold
            ));
        }
    }
    regressions
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("cold-trace: {flag} needs a value\n\n{USAGE}");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let Some(command) = args.first().cloned() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    args.remove(0);
    match command.as_str() {
        "summary" => {
            let [path] = args.as_slice() else {
                eprintln!("cold-trace summary needs exactly one journal\n\n{USAGE}");
                std::process::exit(2);
            };
            print!("{}", render_summary(path, &profile(&load_journal(path))));
        }
        "top" => {
            let k: usize = flag_value(&mut args, "--k")
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("cold-trace: --k: integer expected\n\n{USAGE}");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(5);
            let [path] = args.as_slice() else {
                eprintln!("cold-trace top needs exactly one journal\n\n{USAGE}");
                std::process::exit(2);
            };
            print!("{}", render_top(&profile(&load_journal(path)), k));
        }
        "bench" => {
            let out = flag_value(&mut args, "--out");
            let [path] = args.as_slice() else {
                eprintln!("cold-trace bench needs exactly one journal\n\n{USAGE}");
                std::process::exit(2);
            };
            let text = serde_json::to_string_pretty(&profile_json(&profile(&load_journal(path))))
                .expect("profile serialization is infallible");
            match out {
                Some(out_path) => {
                    if let Err(e) = std::fs::write(&out_path, format!("{text}\n")) {
                        eprintln!("cold-trace: cannot write {out_path}: {e}");
                        std::process::exit(1);
                    }
                    println!("cold-trace: wrote profile to {out_path}");
                }
                None => println!("{text}"),
            }
        }
        "diff" => {
            let threshold: f64 = flag_value(&mut args, "--threshold")
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("cold-trace: --threshold: fraction expected\n\n{USAGE}");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(0.10);
            let [base_path, cand_path] = args.as_slice() else {
                eprintln!("cold-trace diff needs a baseline and a candidate\n\n{USAGE}");
                std::process::exit(2);
            };
            let regressions = diff(&load_side(base_path), &load_side(cand_path), threshold);
            if regressions.is_empty() {
                println!("cold-trace: {cand_path} within {:.1}% of {base_path}", 100.0 * threshold);
            } else {
                for r in &regressions {
                    eprintln!("cold-trace: REGRESSION {cand_path} vs {base_path}: {r}");
                }
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("cold-trace: unknown command `{other}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_obs::{GenerationEvent, GenerationRecord, RunStart, SpanEvent};

    fn record(generation: usize, eval: f64, breed: f64, repair: f64) -> GenerationRecord {
        GenerationRecord {
            generation,
            best: 1.0,
            mean: 2.0,
            worst: 3.0,
            diversity: 1.0,
            cache_hits: 0,
            cache_misses: 4,
            delta_evals: 3,
            full_evals: 1,
            crossover: 2,
            mutation: 1,
            repairs: 0,
            eval_seconds: eval,
            breed_seconds: breed,
            repair_seconds: repair,
            hypervolume: 0.0,
        }
    }

    fn traced(events: Vec<Event>) -> Vec<(Event, Option<cold_obs::trace::TraceFields>)> {
        events.into_iter().map(|e| (e, None)).collect()
    }

    #[test]
    fn profiles_accumulate_phase_seconds_and_counts() {
        let events = traced(vec![
            Event::RunStart(RunStart {
                run: "r".into(),
                n: 10,
                mode: "Initialized".into(),
                generations: 2,
                population: 8,
            }),
            Event::Generation(GenerationEvent {
                run: "r".into(),
                record: record(1, 0.5, 0.2, 0.1),
            }),
            Event::Generation(GenerationEvent {
                run: "r".into(),
                record: record(2, 0.5, 0.2, 0.1),
            }),
            Event::Span(SpanEvent { name: "core.checkpoint_save".into(), seconds: 0.05 }),
            Event::Span(SpanEvent { name: "core.synthesize".into(), seconds: 2.0 }),
        ]);
        let p = profile(&events);
        assert_eq!(p.runs, 1);
        assert_eq!(p.generations, 2);
        assert_eq!(p.delta_evals, 6);
        assert_eq!(p.full_evals, 2);
        assert!((p.phase("eval") - 1.0).abs() < 1e-12);
        assert!((p.phase("breed") - 0.4).abs() < 1e-12);
        assert!((p.phase("repair") - 0.2).abs() < 1e-12);
        assert!((p.phase("checkpoint") - 0.05).abs() < 1e-12);
        assert_eq!(p.trials.len(), 1);
        let text = render_summary("x.jsonl", &p);
        assert!(text.contains("eval"), "{text}");
        assert!(text.contains("2.000s"), "trial wall dominates total: {text}");
    }

    #[test]
    fn diff_flags_share_shifts_and_count_growth_only_past_threshold() {
        let mut base = Profile::default();
        base.phase_seconds.insert("eval", 0.8);
        base.phase_seconds.insert("breed", 0.2);
        base.generations = 100;
        let same = base.clone();
        assert!(diff(&base, &same, 0.10).is_empty());

        // A faster machine with identical shares must not regress.
        let mut faster = Profile::default();
        faster.phase_seconds.insert("eval", 0.08);
        faster.phase_seconds.insert("breed", 0.02);
        faster.generations = 100;
        assert!(diff(&base, &faster, 0.10).is_empty());

        // Repair appearing from nowhere shifts shares.
        let mut shifted = base.clone();
        shifted.phase_seconds.insert("repair", 0.5);
        let r = diff(&base, &shifted, 0.10);
        assert!(r.iter().any(|m| m.contains("`repair`")), "{r:?}");

        // Work growth beyond threshold regresses; shrinkage never does.
        let mut grown = base.clone();
        grown.generations = 120;
        assert!(diff(&base, &grown, 0.10).iter().any(|m| m.contains("`generations`")));
        let mut shrunk = base.clone();
        shrunk.generations = 50;
        assert!(diff(&base, &shrunk, 0.10).is_empty());
    }

    #[test]
    fn profile_json_round_trips_through_a_bench_file() {
        let mut p = Profile::default();
        p.phase_seconds.insert("eval", 1.5);
        p.runs = 2;
        p.evaluations = 400;
        let v = profile_json(&p);
        assert_eq!(v["profile"], "cold-trace");
        assert_eq!(v["phases"]["eval"].as_f64(), Some(1.5));
        assert_eq!(v["counts"]["evaluations"].as_u64(), Some(400));
    }
}
