//! The global metric registry: named counters, gauges and duration
//! histograms behind one mutex, fed by [`ScopedTimer`]s, [`counter_add`]
//! and the gauge setters.
//!
//! Everything here is gated on [`timers_enabled`]: when telemetry is off
//! (the default) a timer, counter or gauge call costs exactly one relaxed
//! atomic load and touches no lock, so instrumented hot paths stay hot.
//! The gate is flipped by [`crate::configure`] alongside the trace sink,
//! or directly with [`set_timers_enabled`] for registry-only use.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Global on/off switch for timers and counters.
static TIMERS_ENABLED: AtomicBool = AtomicBool::new(false);

/// The registry storage. Keys are `&'static str` so instrumentation sites
/// pay no allocation.
static REGISTRY: Mutex<Option<HashMap<&'static str, Metric>>> = Mutex::new(None);

/// Number of log-scale histogram buckets (see [`BUCKET_BOUNDS`]).
pub const BUCKETS: usize = 15;

/// Upper bounds (inclusive, in seconds) of the histogram buckets: a
/// half-decade log scale from 10µs to 100s. Observations above the last
/// bound land only in `count`/`sum` (the `+Inf` bucket in Prometheus
/// exposition).
pub const BUCKET_BOUNDS: [f64; BUCKETS] = [
    1e-5, 3.2e-5, 1e-4, 3.2e-4, 1e-3, 3.2e-3, 1e-2, 3.2e-2, 1e-1, 3.2e-1, 1.0, 3.2, 10.0, 32.0,
    100.0,
];

/// One registry slot: a monotonically increasing counter, a settable
/// gauge, or a duration histogram (count/sum/min/max plus log-scale
/// bucket counts — enough for mean, range and a latency distribution
/// without storing samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// An event count.
    Counter(u64),
    /// A point-in-time level (queue depth, in-flight jobs, live workers).
    Gauge(i64),
    /// A point-in-time real-valued level (archive hypervolume, rates).
    FloatGauge(f64),
    /// Aggregated elapsed-seconds observations.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observed seconds.
        sum: f64,
        /// Smallest observation.
        min: f64,
        /// Largest observation.
        max: f64,
        /// Per-bucket (non-cumulative) observation counts; bucket `i`
        /// holds observations `<= BUCKET_BOUNDS[i]` that fit no earlier
        /// bucket. Overflow beyond the last bound is `count - Σ buckets`.
        buckets: [u64; BUCKETS],
    },
}

impl Metric {
    /// A zeroed histogram, the identity for [`observe_seconds`].
    pub fn empty_histogram() -> Metric {
        Metric::Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
            buckets: [0; BUCKETS],
        }
    }
}

/// True when timers and counters record into the registry.
#[inline]
pub fn timers_enabled() -> bool {
    TIMERS_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables timer/counter recording. [`crate::configure`]
/// calls this; call it directly to use the registry without a trace sink.
pub fn set_timers_enabled(enabled: bool) {
    TIMERS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Adds `delta` to the counter `name` (no-op while disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if !timers_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().expect("metric registry poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    match map.entry(name).or_insert(Metric::Counter(0)) {
        Metric::Counter(c) => *c += delta,
        _ => debug_assert!(false, "metric `{name}` registered with another kind"),
    }
}

/// Sets the gauge `name` to an absolute level (no-op while disabled).
pub fn gauge_set(name: &'static str, value: i64) {
    if !timers_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().expect("metric registry poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    match map.entry(name).or_insert(Metric::Gauge(0)) {
        Metric::Gauge(g) => *g = value,
        _ => debug_assert!(false, "metric `{name}` registered with another kind"),
    }
}

/// Sets the real-valued gauge `name` to an absolute level (no-op while
/// disabled). Distinct from [`gauge_set`]: levels that are inherently
/// fractional — the Pareto archive hypervolume, rates — keep full
/// precision instead of truncating to an integer.
pub fn gauge_set_f64(name: &'static str, value: f64) {
    if !timers_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().expect("metric registry poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    match map.entry(name).or_insert(Metric::FloatGauge(0.0)) {
        Metric::FloatGauge(g) => *g = value,
        _ => debug_assert!(false, "metric `{name}` registered with another kind"),
    }
}

/// Moves the gauge `name` by a signed delta (no-op while disabled).
pub fn gauge_add(name: &'static str, delta: i64) {
    if !timers_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().expect("metric registry poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    match map.entry(name).or_insert(Metric::Gauge(0)) {
        Metric::Gauge(g) => *g += delta,
        _ => debug_assert!(false, "metric `{name}` registered with another kind"),
    }
}

/// Records one elapsed-seconds observation under `name` (no-op while
/// disabled — callers on always-hot paths still gate construction of the
/// `Instant` themselves, see [`timer`]).
pub fn observe_seconds(name: &'static str, seconds: f64) {
    if !timers_enabled() {
        return;
    }
    let mut guard = REGISTRY.lock().expect("metric registry poisoned");
    let map = guard.get_or_insert_with(HashMap::new);
    match map.entry(name).or_insert_with(Metric::empty_histogram) {
        Metric::Histogram { count, sum, min, max, buckets } => {
            *count += 1;
            *sum += seconds;
            *min = min.min(seconds);
            *max = max.max(seconds);
            if let Some(i) = BUCKET_BOUNDS.iter().position(|&b| seconds <= b) {
                buckets[i] += 1;
            }
        }
        _ => debug_assert!(false, "metric `{name}` registered with another kind"),
    }
}

/// A snapshot of the whole registry, sorted by name for stable output.
pub fn snapshot() -> Vec<(String, Metric)> {
    let guard = REGISTRY.lock().expect("metric registry poisoned");
    let mut out: Vec<(String, Metric)> = guard
        .as_ref()
        .map(|m| m.iter().map(|(k, v)| (k.to_string(), *v)).collect())
        .unwrap_or_default();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Clears every metric (tests and fresh CLI runs).
pub fn reset() {
    *REGISTRY.lock().expect("metric registry poisoned") = None;
}

/// RAII timer: measures from construction to drop and records into the
/// histogram `name`. Construct via [`timer`]; when telemetry is disabled
/// the instant is never taken and drop is a no-op.
#[derive(Debug)]
#[must_use = "a timer measures until it is dropped"]
pub struct ScopedTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl ScopedTimer {
    /// Elapsed seconds so far (`None` when the timer is disabled).
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.start.map(|s| s.elapsed().as_secs_f64())
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            observe_seconds(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// Starts a scoped timer for `name`. The disabled path is one relaxed
/// atomic load.
#[inline]
pub fn timer(name: &'static str) -> ScopedTimer {
    let start = timers_enabled().then(Instant::now);
    ScopedTimer { name, start }
}

/// RAII span: a [`ScopedTimer`] that is also a trace scope. While a
/// trace sink is installed, construction pushes a child trace context
/// (anchored by a `span_start` event) so every event emitted inside is
/// stamped as this span's descendant; drop emits the closing
/// [`Event::Span`](crate::Event::Span) with the elapsed seconds under
/// the same span id. Use for coarse phases (a synthesis, a campaign, an
/// ensemble), not per-candidate hot paths.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    scope: Option<crate::trace::TraceScope>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let seconds = start.elapsed().as_secs_f64();
            observe_seconds(self.name, seconds);
            // Emit the close *before* popping the scope so it carries
            // this span's own id (its children nested under it).
            crate::emit(&crate::Event::Span(crate::SpanEvent {
                name: self.name.to_string(),
                seconds,
            }));
            self.scope = None;
        }
    }
}

/// Starts a span for `name` (no-op while telemetry is disabled).
#[inline]
pub fn span(name: &'static str) -> Span {
    let start = timers_enabled().then(Instant::now);
    let scope = match start {
        Some(_) if crate::is_enabled() => Some(crate::trace::child(name, "0000000000000000")),
        _ => None,
    };
    Span { name, start, scope }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::telemetry_lock;

    #[test]
    fn disabled_timers_record_nothing() {
        let _guard = telemetry_lock();
        set_timers_enabled(false);
        reset();
        {
            let t = timer("test.disabled");
            assert!(t.elapsed_seconds().is_none());
        }
        counter_add("test.disabled_counter", 3);
        gauge_set("test.disabled_gauge", 9);
        observe_seconds("test.disabled_hist", 1.0);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn enabled_timers_and_counters_aggregate() {
        let _guard = telemetry_lock();
        set_timers_enabled(true);
        reset();
        for _ in 0..3 {
            let _t = timer("test.hist");
        }
        counter_add("test.count", 2);
        counter_add("test.count", 5);
        let snap = snapshot();
        set_timers_enabled(false);
        let hist = snap.iter().find(|(n, _)| n == "test.hist").expect("histogram recorded");
        match hist.1 {
            Metric::Histogram { count, sum, min, max, buckets } => {
                assert_eq!(count, 3);
                assert!(sum >= 0.0 && min <= max);
                assert_eq!(buckets.iter().sum::<u64>(), 3, "fast timers land in buckets");
            }
            _ => panic!("expected histogram"),
        }
        let counter = snap.iter().find(|(n, _)| n == "test.count").expect("counter recorded");
        assert_eq!(counter.1, Metric::Counter(7));
    }

    #[test]
    fn gauges_set_and_move() {
        let _guard = telemetry_lock();
        set_timers_enabled(true);
        reset();
        gauge_set("test.gauge", 4);
        gauge_add("test.gauge", 3);
        gauge_add("test.gauge", -6);
        let snap = snapshot();
        set_timers_enabled(false);
        let gauge = snap.iter().find(|(n, _)| n == "test.gauge").expect("gauge recorded");
        assert_eq!(gauge.1, Metric::Gauge(1));
    }

    #[test]
    fn float_gauges_keep_precision() {
        let _guard = telemetry_lock();
        set_timers_enabled(true);
        reset();
        gauge_set_f64("test.float_gauge", 0.125);
        gauge_set_f64("test.float_gauge", 2.625);
        let snap = snapshot();
        set_timers_enabled(false);
        let gauge =
            snap.iter().find(|(n, _)| n == "test.float_gauge").expect("float gauge recorded");
        assert_eq!(gauge.1, Metric::FloatGauge(2.625));
    }

    #[test]
    fn observations_land_in_log_scale_buckets() {
        let _guard = telemetry_lock();
        set_timers_enabled(true);
        reset();
        observe_seconds("test.buckets", 5e-6); // <= 1e-5: bucket 0
        observe_seconds("test.buckets", 2e-3); // <= 3.2e-3: bucket 5
        observe_seconds("test.buckets", 0.5); // <= 1.0: bucket 10
        observe_seconds("test.buckets", 500.0); // overflow: no bucket
        let snap = snapshot();
        set_timers_enabled(false);
        match snap.iter().find(|(n, _)| n == "test.buckets").expect("recorded").1 {
            Metric::Histogram { count, buckets, min, max, .. } => {
                assert_eq!(count, 4);
                assert_eq!(buckets[0], 1);
                assert_eq!(buckets[5], 1);
                assert_eq!(buckets[10], 1);
                assert_eq!(buckets.iter().sum::<u64>(), 3, "overflow only in count");
                assert_eq!((min, max), (5e-6, 500.0));
            }
            _ => panic!("expected histogram"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        let _guard = telemetry_lock();
        set_timers_enabled(true);
        reset();
        counter_add("z.last", 1);
        counter_add("a.first", 1);
        let names: Vec<String> = snapshot().into_iter().map(|(n, _)| n).collect();
        set_timers_enabled(false);
        assert_eq!(names, vec!["a.first".to_string(), "z.last".to_string()]);
        reset();
        assert!(snapshot().is_empty());
    }
}
