//! Parameter sweeps: the machinery behind Figs 5–9.
//!
//! Each figure varies `k2` (or `k3`) along a log-spaced axis, holds the
//! other costs fixed, synthesizes an ensemble per point, and plots a
//! statistic's mean with 95% confidence intervals. [`SweepPlan`] captures
//! that shape once so every figure binary is a few lines.

use crate::bootstrap::{bootstrap_mean_ci, MeanCi};
use crate::synthesizer::{ColdConfig, SynthesisResult};
use cold_cost::CostParams;
use serde::{Deserialize, Serialize};

/// Log-spaced values from `lo` to `hi` inclusive.
///
/// # Panics
/// Panics unless `0 < lo <= hi` and `count >= 2` (or `count == 1` with
/// `lo == hi`).
pub fn log_space(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    if count == 1 {
        assert!(lo == hi, "count = 1 requires lo == hi");
        return vec![lo];
    }
    assert!(count >= 2);
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..count).map(|i| (llo + (lhi - llo) * i as f64 / (count - 1) as f64).exp()).collect()
}

/// One sweep point: a `(k2, k3)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Bandwidth cost.
    pub k2: f64,
    /// Hub cost.
    pub k3: f64,
}

/// Aggregated result at one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// The parameter point.
    pub point: SweepPoint,
    /// Statistic name → mean and CI over the ensemble.
    pub stats: Vec<(String, MeanCi)>,
    /// Trials at this point that produced no network even after the
    /// fault-tolerant ensemble's retry; their samples are simply absent
    /// from [`stats`](Self::stats) (the CIs widen accordingly).
    pub lost_trials: usize,
}

impl SweepCell {
    /// Looks up a statistic by name.
    pub fn stat(&self, name: &str) -> Option<&MeanCi> {
        self.stats.iter().find(|(n, _)| n == name).map(|(_, ci)| ci)
    }
}

/// A full sweep: base configuration + the `(k2, k3)` grid + trial count.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Template configuration; its `params.k2/k3` are overridden per point.
    pub base: ColdConfig,
    /// The grid of points to evaluate.
    pub points: Vec<SweepPoint>,
    /// Independent contexts per point.
    pub trials: usize,
    /// Statistics to aggregate (names from [`crate::NetworkStats::get`]).
    pub stats: Vec<String>,
    /// Master seed; trial `t` of point `i` uses a seed derived from
    /// `(seed, i, t)`.
    pub seed: u64,
    /// Bootstrap confidence level (e.g. 0.95).
    pub confidence: f64,
}

impl SweepPlan {
    /// The paper's Fig 5–7 grid: `k2` log-spaced `1e-4…1.6e-3` (7 points),
    /// `k3 ∈ {0, 10, 100, 1000}`.
    pub fn paper_grid(base: ColdConfig, trials: usize, stats: &[&str], seed: u64) -> Self {
        let mut points = Vec::new();
        for &k3 in &[0.0, 10.0, 100.0, 1000.0] {
            for k2 in log_space(1e-4, 1.6e-3, 7) {
                points.push(SweepPoint { k2, k3 });
            }
        }
        Self {
            base,
            points,
            trials,
            stats: stats.iter().map(|s| s.to_string()).collect(),
            seed,
            confidence: 0.95,
        }
    }

    /// Runs the sweep. Parallelism comes from `ColdConfig::ensemble`
    /// within each point.
    pub fn run(&self) -> Vec<SweepCell> {
        self.run_with(|r| r)
    }

    /// Runs the sweep with a per-trial post-processing hook (e.g. to also
    /// capture raw values). The hook sees every completed
    /// [`SynthesisResult`].
    ///
    /// Trials run through the fault-tolerant ensemble
    /// ([`ColdConfig::synthesize_ensemble`]): a panicking trial is retried
    /// once on a fresh seed, and a trial lost even then drops out of the
    /// point's samples (counted in [`SweepCell::lost_trials`]) instead of
    /// tearing down the whole sweep.
    pub fn run_with(
        &self,
        mut observe: impl FnMut(SynthesisResult) -> SynthesisResult,
    ) -> Vec<SweepCell> {
        let _span = cold_obs::span("core.sweep");
        let mut out = Vec::with_capacity(self.points.len());
        for (i, &point) in self.points.iter().enumerate() {
            let cfg = ColdConfig {
                params: CostParams { k2: point.k2, k3: point.k3, ..self.base.params },
                ..self.base
            };
            let point_seed = cold_context::rng::derive_seed(self.seed, i as u64);
            let outcome = cfg.synthesize_ensemble(point_seed, self.trials);
            let lost_trials = outcome.lost_trials().len();
            let results: Vec<SynthesisResult> =
                outcome.results.into_iter().map(|(_, r)| observe(r)).collect();
            let stats = self
                .stats
                .iter()
                .map(|name| {
                    let samples: Vec<f64> =
                        results.iter().filter_map(|r| r.stats.get(name)).collect();
                    let ci = bootstrap_mean_ci(&samples, self.confidence, 1000, point_seed);
                    (name.clone(), ci)
                })
                .collect();
            out.push(SweepCell { point, stats, lost_trials });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_space_endpoints_and_monotone() {
        let xs = log_space(1e-4, 1.6e-3, 5);
        assert_eq!(xs.len(), 5);
        assert!((xs[0] - 1e-4).abs() < 1e-12);
        assert!((xs[4] - 1.6e-3).abs() < 1e-9);
        for w in xs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Log spacing: constant ratio.
        let r1 = xs[1] / xs[0];
        let r2 = xs[3] / xs[2];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn single_point_log_space() {
        assert_eq!(log_space(2.0, 2.0, 1), vec![2.0]);
    }

    #[test]
    fn small_sweep_produces_cells() {
        let base = ColdConfig::quick(7, 1e-4, 0.0);
        let plan = SweepPlan {
            base,
            points: vec![SweepPoint { k2: 1e-4, k3: 0.0 }, SweepPoint { k2: 1.6e-3, k3: 0.0 }],
            trials: 3,
            stats: vec!["average_degree".into(), "diameter".into()],
            seed: 1,
            confidence: 0.95,
        };
        let cells = plan.run();
        assert_eq!(cells.len(), 2);
        for cell in &cells {
            let deg = cell.stat("average_degree").unwrap();
            assert_eq!(deg.count, 3);
            assert!(deg.lo <= deg.mean && deg.mean <= deg.hi);
            // Any connected graph on 7 nodes has average degree in
            // [2−2/7, 6].
            assert!(deg.mean >= 2.0 - 2.0 / 7.0 - 1e-9 && deg.mean <= 6.0);
            assert!(cell.stat("diameter").is_some());
            assert!(cell.stat("nonexistent").is_none());
            assert_eq!(cell.lost_trials, 0, "clean sweep loses no trials");
        }
    }

    #[test]
    fn higher_k2_gives_denser_networks() {
        // The Fig 5 trend, at miniature scale: average degree increases
        // with k2.
        let base = ColdConfig::quick(8, 1e-4, 0.0);
        let plan = SweepPlan {
            base,
            points: vec![SweepPoint { k2: 1e-5, k3: 0.0 }, SweepPoint { k2: 5e-2, k3: 0.0 }],
            trials: 4,
            stats: vec!["average_degree".into()],
            seed: 2,
            confidence: 0.95,
        };
        let cells = plan.run();
        let lo = cells[0].stat("average_degree").unwrap().mean;
        let hi = cells[1].stat("average_degree").unwrap().mean;
        assert!(hi > lo, "avg degree at high k2 ({hi}) not above low k2 ({lo})");
    }
}
