//! The COLD objective function (§3.2.3, eq. 2).

use crate::capacity::{assign_capacities, CapacityPlan};
use crate::params::CostParams;
use cold_context::Context;
use cold_graph::routing::{route_loads_into, RoutingWorkspace};
use cold_graph::{AdjacencyMatrix, GraphError};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Component-wise breakdown of a topology's cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// `k0 · |E|` — link-existence cost.
    pub existence: f64,
    /// `k1 · Σ ℓᵢ` — length cost.
    pub length: f64,
    /// `k2 · Σ ℓᵢ·wᵢ = k2 · Σ t_r·L_r` — bandwidth cost.
    pub bandwidth: f64,
    /// `k3 · |N_C|` — hub complexity cost.
    pub hub: f64,
}

impl CostBreakdown {
    /// Total cost (the GA's fitness value; lower is better).
    pub fn total(&self) -> f64 {
        self.existence + self.length + self.bandwidth + self.hub
    }
}

/// Evaluates the full cost of `topology` in `ctx` under `params`,
/// returning the component breakdown and the capacity plan.
///
/// # Errors
/// Propagates routing failures ([`GraphError::Disconnected`],
/// [`GraphError::SizeMismatch`]). Connectivity is a *constraint*, not a
/// penalty: COLD repairs disconnected candidates before evaluation
/// (§4.1.3), so evaluation treats disconnection as an error rather than
/// assigning a pseudo-cost.
pub fn evaluate_parts(
    topology: &AdjacencyMatrix,
    ctx: &Context,
    params: &CostParams,
) -> Result<(CostBreakdown, CapacityPlan), GraphError> {
    let _timer = cold_obs::timer("cost.evaluate_parts");
    // Params are validated once at `CostEvaluator::new` / config build time;
    // re-validating per evaluation was pure hot-path overhead.
    debug_assert!(params.validate().is_ok(), "invalid cost params: {:?}", params.validate());
    let plan = assign_capacities(topology, ctx, params.overprovision)?;
    let m = plan.link_count() as f64;
    let breakdown = CostBreakdown {
        existence: params.k0 * m,
        length: params.k1 * plan.total_length(),
        bandwidth: params.k2 * plan.traffic_weighted_route_length(),
        hub: params.k3 * topology.degrees().iter().filter(|&&d| d > 1).count() as f64,
    };
    Ok((breakdown, plan))
}

thread_local! {
    /// Per-thread routing scratch for [`evaluate_total`]. Thread-local so
    /// the GA's parallel fitness workers each reuse their own buffers
    /// without locking.
    static ROUTING_SCRATCH: RefCell<(RoutingWorkspace, Vec<f64>)> =
        RefCell::new((RoutingWorkspace::new(), Vec::new()));
}

/// Total cost only — the allocation-lean hot path the GA calls once per
/// candidate per generation.
///
/// Skips everything [`evaluate_parts`] materializes for reports: no
/// [`CapacityPlan`], no shortest-path trees, no edge list; routing runs
/// through a thread-local reusable workspace. The returned total is
/// bit-identical to `evaluate_parts(..).0.total()`.
///
/// # Errors
/// As for [`evaluate_parts`].
pub fn evaluate_total(
    topology: &AdjacencyMatrix,
    ctx: &Context,
    params: &CostParams,
) -> Result<f64, GraphError> {
    if cold_fault::armed() {
        if cold_fault::should_fire("eval.panic") {
            panic!("cold-fault: injected panic at eval.panic");
        }
        if cold_fault::should_fire("eval.nan") {
            return Ok(f64::NAN);
        }
        if cold_fault::should_fire("eval.slow") {
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
    }
    let _timer = cold_obs::timer("cost.evaluate_total");
    evaluate_total_untimed(topology, ctx, params)
}

/// [`evaluate_total`] without the `cold-obs` scoped timer.
///
/// Exists so the `obs_overhead` bench can measure the disabled-telemetry
/// timer cost directly (instrumented-but-off vs. bare); library and GA
/// callers should use [`evaluate_total`].
#[doc(hidden)]
pub fn evaluate_total_untimed(
    topology: &AdjacencyMatrix,
    ctx: &Context,
    params: &CostParams,
) -> Result<f64, GraphError> {
    debug_assert!(params.validate().is_ok(), "invalid cost params: {:?}", params.validate());
    if topology.n() != ctx.n() {
        return Err(GraphError::SizeMismatch { expected: ctx.n(), actual: topology.n() });
    }
    let g = topology.to_graph();
    let dist = ctx.distance_fn();
    let weighted = ROUTING_SCRATCH.with(|s| {
        let (ws, load) = &mut *s.borrow_mut();
        route_loads_into(&g, dist, ctx.traffic_fn(), ws, load)
    })?;
    // |E| and Σℓ accumulated in the same edge order as the capacity plan so
    // the length sum rounds identically.
    let mut links = 0usize;
    let mut total_length = 0.0f64;
    for (u, v) in g.edges() {
        links += 1;
        total_length += dist(u, v);
    }
    let hubs = (0..g.n()).filter(|&v| g.degree(v) > 1).count();
    Ok(params.k0 * links as f64
        + params.k1 * total_length
        + params.k2 * weighted
        + params.k3 * hubs as f64)
}

/// Total cost only, via the full [`evaluate_parts`] pipeline — see
/// [`evaluate_total`] for the equivalent lean path.
pub fn evaluate(
    topology: &AdjacencyMatrix,
    ctx: &Context,
    params: &CostParams,
) -> Result<f64, GraphError> {
    Ok(evaluate_parts(topology, ctx, params)?.0.total())
}

/// A reusable evaluator bundling a context and parameters.
///
/// This is the `Objective` the GA optimizes; bundling lets the engine stay
/// generic over *what* is being minimized (the extensibility §2 calls out:
/// "it is generally easy to add additional costs or constraints").
#[derive(Debug, Clone)]
pub struct CostEvaluator<'a> {
    /// The synthesis context (fixed during one optimization).
    pub ctx: &'a Context,
    /// The cost parameters.
    pub params: CostParams,
}

impl<'a> CostEvaluator<'a> {
    /// Creates an evaluator.
    pub fn new(ctx: &'a Context, params: CostParams) -> Self {
        params.validate().expect("invalid cost params");
        Self { ctx, params }
    }

    /// Cost of a (connected) topology — the GA's fitness call, routed
    /// through the allocation-lean [`evaluate_total`] path.
    ///
    /// # Errors
    /// See [`evaluate_total`].
    pub fn cost(&self, topology: &AdjacencyMatrix) -> Result<f64, GraphError> {
        evaluate_total(topology, self.ctx, &self.params)
    }

    /// Cost with full breakdown and capacity plan.
    ///
    /// # Errors
    /// See [`evaluate_parts`].
    pub fn cost_parts(
        &self,
        topology: &AdjacencyMatrix,
    ) -> Result<(CostBreakdown, CapacityPlan), GraphError> {
        evaluate_parts(topology, self.ctx, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_context::gravity::GravityModel;
    use cold_context::population::PopulationKind;
    use cold_context::region::Point;

    fn square_context() -> Context {
        Context::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            PopulationKind::Constant { value: 1.0 },
            GravityModel::raw(),
            0,
        )
    }

    #[test]
    fn breakdown_on_ring() {
        let ctx = square_context();
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let params = CostParams::new(10.0, 1.0, 0.01, 5.0);
        let (b, plan) = evaluate_parts(&ring, &ctx, &params).unwrap();
        assert_eq!(b.existence, 40.0);
        assert!((b.length - 4.0).abs() < 1e-12);
        // All 4 nodes have degree 2 ⇒ all are hubs.
        assert_eq!(b.hub, 20.0);
        // t·L: 8 adjacent ordered pairs at distance 1 = 8; 4 diagonal
        // ordered pairs at distance 2 = 8 → 16. Bandwidth = 0.01·16.
        assert!((b.bandwidth - 0.16).abs() < 1e-12);
        assert!((b.total() - (40.0 + 4.0 + 0.16 + 20.0)).abs() < 1e-12);
        assert_eq!(plan.link_count(), 4);
    }

    #[test]
    fn star_has_one_hub() {
        let ctx = square_context();
        let star = AdjacencyMatrix::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let params = CostParams::new(0.0, 0.0, 0.0, 7.0);
        let (b, _) = evaluate_parts(&star, &ctx, &params).unwrap();
        assert_eq!(b.hub, 7.0);
        assert_eq!(b.total(), 7.0);
    }

    #[test]
    fn k0_counts_links() {
        let ctx = square_context();
        let full = AdjacencyMatrix::complete(4);
        let params = CostParams::new(2.0, 0.0, 0.0, 0.0);
        assert_eq!(evaluate(&full, &ctx, &params).unwrap(), 12.0);
    }

    #[test]
    fn disconnected_is_error_not_penalty() {
        let ctx = square_context();
        let topo = AdjacencyMatrix::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            evaluate(&topo, &ctx, &CostParams::default()),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn evaluator_matches_free_function() {
        let ctx = square_context();
        let params = CostParams::paper(1e-3, 10.0);
        let ev = CostEvaluator::new(&ctx, params);
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(ev.cost(&ring).unwrap(), evaluate(&ring, &ctx, &params).unwrap());
    }

    #[test]
    fn bandwidth_identity_holds() {
        // k2·Σℓw computed from the plan equals the bandwidth component.
        let ctx = square_context();
        let topo = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let params = CostParams::new(0.0, 0.0, 0.5, 0.0);
        let (b, plan) = evaluate_parts(&topo, &ctx, &params).unwrap();
        let direct: f64 = plan.length.iter().zip(plan.load()).map(|(&l, &w)| 0.5 * l * w).sum();
        assert!((b.bandwidth - direct).abs() < 1e-9);
    }

    #[test]
    fn evaluate_total_is_bit_identical_to_parts() {
        let ctx = square_context();
        let params = CostParams::paper(3e-4, 12.0).with_overprovision(1.5);
        let topologies = [
            AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap(),
            AdjacencyMatrix::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap(),
            AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap(),
            AdjacencyMatrix::complete(4),
        ];
        for topo in &topologies {
            let full = evaluate_parts(topo, &ctx, &params).unwrap().0.total();
            let lean = evaluate_total(topo, &ctx, &params).unwrap();
            assert_eq!(lean, full, "paths must agree bit-for-bit");
            // And the scratch must not leak state between evaluations.
            assert_eq!(evaluate_total(topo, &ctx, &params).unwrap(), lean);
        }
    }

    #[test]
    fn evaluate_total_propagates_errors() {
        let ctx = square_context();
        let params = CostParams::default();
        let disconnected = AdjacencyMatrix::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            evaluate_total(&disconnected, &ctx, &params),
            Err(GraphError::Disconnected)
        ));
        let wrong_n = AdjacencyMatrix::complete(5);
        assert!(matches!(
            evaluate_total(&wrong_n, &ctx, &params),
            Err(GraphError::SizeMismatch { expected: 4, actual: 5 })
        ));
    }

    #[test]
    fn coincident_pops_cost_both_paths() {
        // Two PoPs at identical coordinates: the zero-length link must still
        // carry (and charge for) the full subtree's bandwidth on both
        // evaluation paths.
        let ctx = Context::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(1.0, 0.0)],
            PopulationKind::Constant { value: 1.0 },
            GravityModel::raw(),
            0,
        );
        let topo = AdjacencyMatrix::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let params = CostParams::new(0.0, 0.0, 1.0, 0.0);
        let (b, plan) = evaluate_parts(&topo, &ctx, &params).unwrap();
        // Unit demands: pairs (0,1) and (0,2) each route over the length-1
        // link, (1,2) over the length-0 link ⇒ Σ t·L = 4.
        assert_eq!(b.bandwidth, 4.0);
        // The zero-length link still carries its four demands.
        let zero_link = plan.edges().iter().position(|&e| e == (1, 2)).unwrap();
        assert_eq!(plan.load()[zero_link], 4.0);
        assert_eq!(evaluate_total(&topo, &ctx, &params).unwrap(), b.total());
    }

    #[test]
    fn tree_beats_clique_when_k0_dominates() {
        // §3.2.3: "if this cost dominates, the spanning trees are optimal".
        let ctx = square_context();
        let params = CostParams::new(1000.0, 1.0, 1e-6, 0.0);
        let mst = cold_graph::mst::mst_matrix(4, ctx.distance_fn());
        let clique = AdjacencyMatrix::complete(4);
        assert!(evaluate(&mst, &ctx, &params).unwrap() < evaluate(&clique, &ctx, &params).unwrap());
    }

    #[test]
    fn clique_beats_tree_when_k2_dominates() {
        // §3.2.3: "when k2 dominates … the result will be a clique".
        let ctx = square_context();
        let params = CostParams::new(0.001, 0.001, 100.0, 0.0);
        let mst = cold_graph::mst::mst_matrix(4, ctx.distance_fn());
        let clique = AdjacencyMatrix::complete(4);
        assert!(evaluate(&clique, &ctx, &params).unwrap() < evaluate(&mst, &ctx, &params).unwrap());
    }

    #[test]
    fn star_beats_ring_when_k3_dominates() {
        // §3.2.3: "If this cost is dominant, the optimal network will have
        // only one node with degree greater than one".
        let ctx = square_context();
        let params = CostParams::new(0.0, 0.0, 0.0, 100.0);
        let star = AdjacencyMatrix::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let ring = AdjacencyMatrix::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(evaluate(&star, &ctx, &params).unwrap() < evaluate(&ring, &ctx, &params).unwrap());
    }
}
