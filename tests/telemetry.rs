//! Integration tests for the `cold-obs` telemetry layer: a real synthesis
//! run journaled to disk, the JSONL schema round-tripped through the
//! vendored `serde_json`, and the determinism guarantee (tracing on vs.
//! off) checked at the `ColdConfig` level.

use cold::ColdConfig;
use cold_obs::{parse_journal, Event, TraceMode};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serializes tests in this binary that flip the process-global telemetry
/// state (sink, timer gate). Without it `cargo test`'s parallel threads
/// would race on enable/disable.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_journal(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cold-telemetry-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn journal_records_one_event_per_generation_and_round_trips() {
    let _guard = telemetry_lock();
    let path = temp_journal("roundtrip");
    cold_obs::configure(TraceMode::Journal(path.clone())).expect("journal sink");
    let cfg = ColdConfig::quick(10, 4e-4, 10.0);
    let result = cfg.synthesize(42);
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    assert_eq!(result.journal_path.as_deref(), Some(path.as_path()));
    let text = std::fs::read_to_string(&path).expect("journal written");
    let events = parse_journal(&text).expect("every line is a valid event");

    // Exactly one run_start and one run_end, same run id, framing the
    // generation events.
    let starts: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::RunStart(s) => Some(s),
            _ => None,
        })
        .collect();
    let ends: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::RunEnd(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(starts.len(), 1);
    assert_eq!(ends.len(), 1);
    assert_eq!(starts[0].run, ends[0].run);
    assert_eq!(starts[0].n, 10);
    assert_eq!(starts[0].generations, cfg.ga.generations);

    // One generation event per executed generation, 1-based and ordered,
    // with monotone non-increasing best fitness (elitism).
    let gens: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Generation(g) => Some(g),
            _ => None,
        })
        .collect();
    assert_eq!(gens.len(), result.generations_run);
    for (i, g) in gens.iter().enumerate() {
        assert_eq!(g.run, starts[0].run);
        assert_eq!(g.record.generation, i + 1);
        assert!(g.record.best <= g.record.mean + 1e-12);
        assert!(g.record.mean <= g.record.worst + 1e-12);
        assert!((0.0..=1.0).contains(&g.record.diversity));
        if i > 0 {
            assert!(g.record.best <= gens[i - 1].record.best + 1e-12, "best regressed at {i}");
        }
    }

    // The run_end summary matches what the synthesis result reports.
    assert_eq!(ends[0].generations_run, result.generations_run);
    assert_eq!(ends[0].evaluations, result.evaluations);
    assert!((ends[0].best_cost - result.network.total_cost()).abs() < 1e-9);
    assert!((0.0..=1.0).contains(&ends[0].cache_hit_rate));

    // Schema round-trip through the vendored serde_json: serialize each
    // parsed event back to a JSONL line, re-parse, and re-serialize; the
    // fixed point must be reached after one cycle.
    for event in &events {
        let line = event.to_json_line();
        let reparsed = parse_journal(&line).expect("re-serialized event parses");
        assert_eq!(reparsed.len(), 1);
        assert_eq!(reparsed[0].to_json_line(), line, "round-trip changed the event");
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn guard_and_fault_events_round_trip_through_the_journal() {
    let _guard = telemetry_lock();
    let path = temp_journal("guard-events");
    cold_obs::configure(TraceMode::Journal(path.clone())).expect("journal sink");
    cold_obs::emit(&Event::TrialDeadlineExceeded(cold_obs::TrialDeadlineExceeded {
        trial: 3,
        attempt: 2,
        seed: u64::MAX,
        seconds: 0.25,
    }));
    cold_obs::emit(&Event::GaStalled(cold_obs::GaStalled {
        run: cold_obs::run_id(0xBEEF),
        generation: 57,
        stall_gens: 25,
        best: 101.5,
    }));
    cold_obs::emit(&Event::FaultInjected(cold_obs::FaultInjected {
        site: "eval.nan".into(),
        hit: 12,
    }));
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    let text = std::fs::read_to_string(&path).expect("journal written");
    let events = parse_journal(&text).expect("every line is a valid event");
    assert_eq!(events.len(), 3);
    match &events[0] {
        Event::TrialDeadlineExceeded(d) => {
            assert_eq!((d.trial, d.attempt, d.seed), (3, 2, u64::MAX));
            assert_eq!(d.seconds, 0.25);
        }
        other => panic!("expected trial_deadline_exceeded, got {other:?}"),
    }
    match &events[1] {
        Event::GaStalled(s) => {
            assert_eq!((s.generation, s.stall_gens), (57, 25));
            assert_eq!(s.best, 101.5);
        }
        other => panic!("expected ga_stalled, got {other:?}"),
    }
    match &events[2] {
        Event::FaultInjected(f) => assert_eq!((f.site.as_str(), f.hit), ("eval.nan", 12)),
        other => panic!("expected fault_injected, got {other:?}"),
    }
    // One serialize→parse→serialize cycle is a fixed point.
    for event in &events {
        let line = event.to_json_line();
        let reparsed = parse_journal(&line).expect("re-serialized event parses");
        assert_eq!(reparsed[0].to_json_line(), line);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_events_round_trip_through_the_journal() {
    let _guard = telemetry_lock();
    let path = temp_journal("serve-events");
    cold_obs::configure(TraceMode::Journal(path.clone())).expect("journal sink");
    let id = "00c0ffee00c0ffee".to_string();
    cold_obs::emit(&Event::JobSubmitted(cold_obs::JobSubmitted {
        id: id.clone(),
        n: 12,
        count: 4,
        seed: u64::MAX,
    }));
    cold_obs::emit(&Event::JobStarted(cold_obs::JobStarted { id: id.clone(), resumed: 2 }));
    cold_obs::emit(&Event::CacheHit(cold_obs::CacheHit {
        id: id.clone(),
        kind: "inflight".into(),
    }));
    cold_obs::emit(&Event::JobDone(cold_obs::JobDone { id: id.clone(), trials: 4, seconds: 1.75 }));
    cold_obs::emit(&Event::JobFailed(cold_obs::JobFailed {
        id: id.clone(),
        error: "trial panicked: injected".into(),
    }));
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    let text = std::fs::read_to_string(&path).expect("journal written");
    let events = parse_journal(&text).expect("every line is a valid event");
    assert_eq!(events.len(), 5);
    match &events[0] {
        Event::JobSubmitted(j) => {
            assert_eq!(j.id, id);
            assert_eq!((j.n, j.count, j.seed), (12, 4, u64::MAX));
        }
        other => panic!("expected job_submitted, got {other:?}"),
    }
    match &events[1] {
        Event::JobStarted(j) => assert_eq!((j.id.as_str(), j.resumed), (id.as_str(), 2)),
        other => panic!("expected job_started, got {other:?}"),
    }
    match &events[2] {
        Event::CacheHit(c) => {
            assert_eq!((c.id.as_str(), c.kind.as_str()), (id.as_str(), "inflight"))
        }
        other => panic!("expected cache_hit, got {other:?}"),
    }
    match &events[3] {
        Event::JobDone(j) => {
            assert_eq!((j.id.as_str(), j.trials), (id.as_str(), 4));
            assert_eq!(j.seconds, 1.75);
        }
        other => panic!("expected job_done, got {other:?}"),
    }
    match &events[4] {
        Event::JobFailed(j) => {
            assert_eq!(
                (j.id.as_str(), j.error.as_str()),
                (id.as_str(), "trial panicked: injected")
            );
        }
        other => panic!("expected job_failed, got {other:?}"),
    }
    // One serialize→parse→serialize cycle is a fixed point.
    for event in &events {
        let line = event.to_json_line();
        let reparsed = parse_journal(&line).expect("re-serialized event parses");
        assert_eq!(reparsed[0].to_json_line(), line);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tracing_does_not_perturb_synthesis() {
    let _guard = telemetry_lock();
    cold_obs::configure(TraceMode::Off).expect("start untraced");
    let cfg = ColdConfig::quick(9, 4e-4, 10.0);
    let plain = cfg.synthesize(7);
    assert_eq!(plain.journal_path, None);

    let path = temp_journal("determinism");
    cold_obs::configure(TraceMode::Journal(path.clone())).expect("journal sink");
    let traced = cfg.synthesize(7);
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    // Bit-identical topology and cost; identical deterministic counters.
    // (eval_seconds is wall-clock and legitimately differs.)
    assert_eq!(plain.network.topology, traced.network.topology);
    assert_eq!(plain.network.total_cost(), traced.network.total_cost());
    assert_eq!(plain.evaluations, traced.evaluations);
    assert_eq!(plain.generations_run, traced.generations_run);
    assert_eq!(plain.eval_stats.requested, traced.eval_stats.requested);
    assert_eq!(plain.eval_stats.cache_hits, traced.eval_stats.cache_hits);
    assert_eq!(plain.eval_stats.cache_misses, traced.eval_stats.cache_misses);

    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_snapshot_lands_in_journal() {
    let _guard = telemetry_lock();
    let path = temp_journal("metrics");
    cold_obs::configure(TraceMode::Journal(path.clone())).expect("journal sink");
    let cfg = ColdConfig::quick(8, 4e-4, 10.0);
    let _ = cfg.synthesize(5);
    cold_obs::emit_metrics_snapshot();
    cold_obs::configure(TraceMode::Off).expect("disable sink");

    let text = std::fs::read_to_string(&path).expect("journal written");
    let events = parse_journal(&text).expect("valid journal");
    let metrics = events
        .iter()
        .rev()
        .find_map(|e| match e {
            Event::Metrics(m) => Some(m),
            _ => None,
        })
        .expect("snapshot event present");
    let names: Vec<&str> = metrics.metrics.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"cost.evaluate_total"), "timers recorded: {names:?}");
    assert!(names.contains(&"ga.evaluate_batch"), "timers recorded: {names:?}");

    std::fs::remove_file(&path).ok();
    cold_obs::reset();
}
