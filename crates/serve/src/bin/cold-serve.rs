//! `cold-serve` — the COLD synthesis service.
//!
//! ```sh
//! cold-serve --addr 127.0.0.1:0 --workers 2 --cache-dir runs/serve-cache
//! cold-serve --journal runs/serve.jsonl --deadline 60
//! cold-serve --faults serve.worker_panic:1 --faults-seed 7   # chaos smoke
//! ```
//!
//! Prints `cold-serve listening on http://<addr>` (resolving ephemeral
//! ports) on stdout once bound — scripts scrape that line. Drains
//! gracefully on SIGTERM / SIGINT / `POST /admin/shutdown`: in-flight
//! campaigns cancel at their next trial boundary with the completed
//! prefix checkpointed, so restarting with the same `--cache-dir`
//! resumes them.
//!
//! ## Distributed mode
//!
//! ```sh
//! cold-serve --role coordinator --dist-addr 127.0.0.1:8094
//! cold-serve --role worker --coordinator 127.0.0.1:8094
//! ```
//!
//! A coordinator additionally prints `cold-serve dist listening on
//! <addr>` and shards every campaign's trials across registered
//! workers (work-stealing leases, heartbeats, checkpoint migration —
//! see `DESIGN.md` §16). A worker runs no HTTP server at all: it pulls
//! leases until the coordinator drains it or a signal arrives, then
//! exits 0.

use cold_serve::dist::{run_worker, DistConfig, WorkerConfig};
use cold_serve::{Server, ServerConfig};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "cold-serve — COLD synthesis service

USAGE:
    cold-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>      bind address (default 127.0.0.1:8093; port 0 = ephemeral)
    --workers <N>           synthesis worker threads (default 2)
    --http-threads <N>      HTTP handler threads (default 4)
    --queue <N>             job queue capacity; full queue answers 503 (default 16)
    --cache-dir <PATH>      content-addressed result cache (default cold-serve-cache)
    --cache-max-bytes <N>   bound the cache: after each result write, evict
                            completed job directories LRU-first until the
                            cache fits (parents of in-flight evolve jobs
                            are never evicted; default unbounded)
    --deadline <SECS>       per-trial wall-clock deadline (default none)
    --journal <PATH>        append a JSONL event journal (job + synthesis events)
    --faults <SPEC>         arm deterministic fault injection (COLD_FAULTS syntax)
    --faults-seed <N>       seed for probabilistic fault triggers (default 0)
    -h, --help              show this help

DISTRIBUTED MODE:
    --role <ROLE>           coordinator | worker (default: standalone server)
    --dist-addr <HOST:PORT> coordinator: worker-protocol listen address
                            (default 127.0.0.1:8094; port 0 = ephemeral)
    --coordinator <ADDR>    worker: coordinator address to pull leases from
    --worker-name <NAME>    worker: pool-unique name (default worker-<pid>)
    --heartbeat-ms <N>      worker: heartbeat interval (default 500)
    --lease-deadline <SECS> coordinator: per-trial lease deadline (default 120)
    --dist-ckpt-every <N>   coordinator: GA snapshot upload cadence (default 5)
";

/// Set from the signal handler; polled by the main thread.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; `signal(2)` is in every libc std already links.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:8093".into(), ..ServerConfig::default() };
    let mut journal: Option<PathBuf> = None;
    let mut faults: Option<String> = None;
    let mut faults_seed = 0u64;
    let mut role: Option<String> = None;
    let mut dist_addr = "127.0.0.1:8094".to_string();
    let mut worker_cfg = WorkerConfig::default();
    let mut dist_cfg = DistConfig::default();

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a value\n\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = value(&mut args, "--addr"),
            "--workers" => {
                config.workers = value(&mut args, "--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers: integer expected\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--http-threads" => {
                config.http_threads =
                    value(&mut args, "--http-threads").parse().unwrap_or_else(|_| {
                        eprintln!("--http-threads: integer expected\n\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--queue" => {
                config.queue_capacity = value(&mut args, "--queue").parse().unwrap_or_else(|_| {
                    eprintln!("--queue: integer expected\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--cache-dir" => config.cache_dir = PathBuf::from(value(&mut args, "--cache-dir")),
            "--cache-max-bytes" => {
                config.cache_max_bytes =
                    Some(value(&mut args, "--cache-max-bytes").parse().unwrap_or_else(|_| {
                        eprintln!("--cache-max-bytes: integer expected\n\n{USAGE}");
                        std::process::exit(2);
                    }));
            }
            "--deadline" => {
                let secs: f64 = value(&mut args, "--deadline").parse().unwrap_or_else(|_| {
                    eprintln!("--deadline: seconds expected\n\n{USAGE}");
                    std::process::exit(2);
                });
                config.trial_deadline = Some(Duration::from_secs_f64(secs));
            }
            "--role" => {
                let r = value(&mut args, "--role");
                if r != "coordinator" && r != "worker" {
                    eprintln!("--role: `coordinator` or `worker` expected\n\n{USAGE}");
                    std::process::exit(2);
                }
                role = Some(r);
            }
            "--dist-addr" => dist_addr = value(&mut args, "--dist-addr"),
            "--coordinator" => worker_cfg.coordinator = value(&mut args, "--coordinator"),
            "--worker-name" => worker_cfg.name = value(&mut args, "--worker-name"),
            "--heartbeat-ms" => {
                worker_cfg.heartbeat_ms =
                    value(&mut args, "--heartbeat-ms").parse().unwrap_or_else(|_| {
                        eprintln!("--heartbeat-ms: integer expected\n\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--lease-deadline" => {
                let secs: f64 = value(&mut args, "--lease-deadline").parse().unwrap_or_else(|_| {
                    eprintln!("--lease-deadline: seconds expected\n\n{USAGE}");
                    std::process::exit(2);
                });
                dist_cfg.lease_deadline = Duration::from_secs_f64(secs);
            }
            "--dist-ckpt-every" => {
                dist_cfg.ckpt_every =
                    value(&mut args, "--dist-ckpt-every").parse().unwrap_or_else(|_| {
                        eprintln!("--dist-ckpt-every: integer expected\n\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--journal" => journal = Some(PathBuf::from(value(&mut args, "--journal"))),
            "--faults" => faults = Some(value(&mut args, "--faults")),
            "--faults-seed" => {
                faults_seed = value(&mut args, "--faults-seed").parse().unwrap_or_else(|_| {
                    eprintln!("--faults-seed: integer expected\n\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unexpected argument `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &journal {
        cold_obs::configure(cold_obs::TraceMode::Journal(path.clone()))
            .unwrap_or_else(|e| panic!("--journal {}: {e}", path.display()));
    }
    if let Some(spec) = &faults {
        cold_fault::configure(spec, faults_seed).unwrap_or_else(|e| {
            eprintln!("--faults: {e}\n\n{USAGE}");
            std::process::exit(2);
        });
    }

    install_signal_handlers();

    // Worker role: no HTTP server at all — just the lease-pulling loop,
    // drained by the coordinator or a signal.
    if role.as_deref() == Some("worker") {
        match run_worker(&worker_cfg, &SIGNALED) {
            Ok(()) => return,
            Err(e) => {
                eprintln!("cold-serve: worker failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if role.as_deref() == Some("coordinator") {
        dist_cfg.addr = dist_addr;
        config.dist = Some(dist_cfg);
    }

    let handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cold-serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    println!("cold-serve listening on http://{}", handle.local_addr());
    if let Some(addr) = handle.dist_addr() {
        println!("cold-serve dist listening on {addr}");
    }
    std::io::stdout().flush().expect("stdout flush");

    while !SIGNALED.load(Ordering::SeqCst) && !handle.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("cold-serve: draining (campaigns cancel at their next trial boundary)");
    handle.shutdown();
    handle.join();
    eprintln!("cold-serve: drained; unfinished jobs resume on restart");
}
