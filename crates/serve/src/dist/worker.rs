//! Worker side of the distributed trial pool.
//!
//! A worker is deliberately stateless: it registers with the
//! coordinator, then loops pulling one lease at a time, running the
//! trial, and uploading the result. Everything that matters for
//! recovery lives on the coordinator — if a worker dies mid-trial
//! (crash, SIGKILL, network partition) the coordinator notices via the
//! missed heartbeats, requeues the lease, and the next holder resumes
//! from the last uploaded GA snapshot.
//!
//! Fault sites wired through this module:
//!
//! * `dist.worker_crash` — `abort()`s the process at a trial boundary
//!   (before the GA starts, or right after a checkpoint upload), the
//!   injected stand-in for a SIGKILL mid-campaign.
//! * `dist.conn_drop` — drops the connection after writing a request
//!   frame, exercising the retry/idempotency paths.
//! * `dist.heartbeat_miss` — skips one heartbeat, exercising eviction
//!   tolerance.

use crate::dist::proto::{self, Msg};
use cold::{fingerprint_hex, value_fingerprint, ColdConfig, TrialRecord};
use serde::Deserialize;
use serde_json::json;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Connection settings for one worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Self-reported name; must be unique within the pool (the default
    /// `worker-<pid>` is).
    pub name: String,
    /// Heartbeat interval in milliseconds.
    pub heartbeat_ms: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            coordinator: "127.0.0.1:8094".into(),
            name: format!("worker-{}", std::process::id()),
            heartbeat_ms: 500,
        }
    }
}

/// One request/reply exchange on a fresh connection.
fn exchange(addr: &str, msg: &Msg) -> io::Result<Msg> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    proto::write_frame(&mut stream, msg)?;
    if cold_fault::armed() && cold_fault::should_fire("dist.conn_drop") {
        // Simulate the connection dying between request and reply: the
        // request may or may not have been processed, which is exactly
        // why every upload is idempotent.
        drop(stream);
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "injected fault: dist.conn_drop",
        ));
    }
    proto::read_frame(&mut stream)
}

/// Retries an idempotent exchange a few times before giving up.
fn exchange_retry(addr: &str, msg: &Msg, attempts: usize) -> io::Result<Msg> {
    let mut last = None;
    for i in 0..attempts {
        match exchange(addr, msg) {
            Ok(reply) => return Ok(reply),
            Err(e) => {
                last = Some(e);
                if i + 1 < attempts {
                    thread::sleep(Duration::from_millis(200));
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("exchange failed")))
}

fn crash_if_armed(site: &str) -> ! {
    eprintln!("[cold-serve] worker aborting: injected fault {site}");
    std::process::abort();
}

/// Runs the worker loop until the coordinator drains it or `shutdown`
/// is set. Returns `Ok(())` on a clean drain.
///
/// # Errors
/// An I/O error if the coordinator is unreachable at registration time
/// (after a bounded retry window) or disappears for good mid-run.
pub fn run_worker(cfg: &WorkerConfig, shutdown: &AtomicBool) -> io::Result<()> {
    // All of this worker's journal lines live under one `dist.worker`
    // root; per-trial spans re-anchor under the owning job's trace.
    let worker_trace_id = fingerprint_hex(value_fingerprint(&json!({"dist_worker": cfg.name})));
    let _scope = cold_obs::trace::root("dist.worker", &worker_trace_id);
    let worker_ctx = cold_obs::trace::current();

    // Registration, with retry: the worker may start before the
    // coordinator's listener is up.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match exchange(&cfg.coordinator, &Msg::Hello { worker: cfg.name.clone() }) {
            Ok(Msg::HelloOk) => break,
            Ok(other) => {
                return Err(io::Error::other(format!("unexpected hello reply: {other:?}")))
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(250));
            }
        }
    }
    eprintln!("[cold-serve] worker {} joined coordinator {}", cfg.name, cfg.coordinator);

    // Heartbeat thread: cheap, independent of trial execution, and the
    // drain side-channel (the coordinator answers `drain: true` once
    // the server starts shutting down).
    let drain = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let addr = cfg.coordinator.clone();
        let name = cfg.name.clone();
        let every = Duration::from_millis(cfg.heartbeat_ms.max(50));
        let drain = Arc::clone(&drain);
        let hb_stop = Arc::clone(&hb_stop);
        let ctx = worker_ctx.clone();
        thread::spawn(move || {
            let _scope = ctx.map(cold_obs::trace::enter);
            while !hb_stop.load(Ordering::SeqCst) {
                thread::sleep(every);
                if hb_stop.load(Ordering::SeqCst) {
                    break;
                }
                if cold_fault::armed() && cold_fault::should_fire("dist.heartbeat_miss") {
                    continue; // skip exactly this beat
                }
                if let Ok(Msg::HeartbeatOk { drain: d }) =
                    exchange(&addr, &Msg::Heartbeat { worker: name.clone() })
                {
                    if d {
                        drain.store(true, Ordering::SeqCst);
                    }
                }
            }
        })
    };

    let mut consecutive_failures = 0usize;
    let outcome = loop {
        if shutdown.load(Ordering::SeqCst) || drain.load(Ordering::SeqCst) {
            break Ok(());
        }
        match exchange(&cfg.coordinator, &Msg::LeaseRequest { worker: cfg.name.clone() }) {
            Ok(Msg::Grant(grant)) => {
                consecutive_failures = 0;
                run_lease(cfg, grant);
            }
            Ok(Msg::NoWork { backoff_ms }) => {
                consecutive_failures = 0;
                thread::sleep(Duration::from_millis(backoff_ms.clamp(10, 2000)));
            }
            Ok(Msg::Drain) => break Ok(()),
            Ok(_) | Err(_) => {
                consecutive_failures += 1;
                if consecutive_failures > 120 {
                    break Err(io::Error::other("coordinator unreachable for too long"));
                }
                thread::sleep(Duration::from_millis(250));
            }
        }
    };

    let _ = exchange(&cfg.coordinator, &Msg::Bye { worker: cfg.name.clone() });
    hb_stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    eprintln!("[cold-serve] worker {} drained", cfg.name);
    outcome
}

/// Executes one granted trial: resume from the shipped snapshot if any,
/// upload periodic GA checkpoints, then upload the result (idempotent,
/// retried).
fn run_lease(cfg: &WorkerConfig, grant: proto::LeaseGrant) {
    // Re-anchor this trial's spans (and its GA generation events) under
    // the owning job's distributed trace.
    let _scope = cold_obs::trace::root("dist.lease", &grant.trace_id);
    if cold_fault::armed() && cold_fault::should_fire("dist.worker_crash") {
        crash_if_armed("dist.worker_crash");
    }
    let Some(job_config) = ColdConfig::from_json_value(&grant.config) else {
        let _ = exchange(
            &cfg.coordinator,
            &Msg::TrialError {
                worker: cfg.name.clone(),
                lease: grant.lease.clone(),
                error: "grant carried an unparseable config".into(),
            },
        );
        return;
    };
    let resume = grant.snapshot.as_ref().and_then(|s| cold::ga::GaCheckpoint::from_value(s).ok());
    if let Some(r) = &resume {
        eprintln!(
            "[cold-serve] worker {} resuming job {} trial {} from generation {}",
            cfg.name, grant.job, grant.trial, r.generation
        );
    }

    let addr = cfg.coordinator.clone();
    let name = cfg.name.clone();
    let lease_id = grant.lease.clone();
    let mut upload_snapshot = |ckpt: &cold::ga::GaCheckpoint| {
        let _ = exchange(
            &addr,
            &Msg::TrialCheckpoint {
                worker: name.clone(),
                lease: lease_id.clone(),
                snapshot: ckpt.to_value(),
            },
        );
        // Crash *after* the upload: the injected stand-in for a worker
        // SIGKILLed mid-GA with a snapshot already safely off-box —
        // the migrated trial must resume from it, not from scratch.
        if cold_fault::armed() && cold_fault::should_fire("dist.worker_crash") {
            crash_if_armed("dist.worker_crash");
        }
    };
    let hook =
        cold::ga::CheckpointHook { every: grant.ckpt_every.max(1), sink: &mut upload_snapshot };

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        job_config.try_synthesize_resumable(grant.seed, None, Some(hook), resume)
    }));
    let error = match outcome {
        Ok(Ok(result)) => {
            let record = TrialRecord::from_result(grant.trial, grant.seed, &result);
            let upload = Msg::TrialResult {
                worker: cfg.name.clone(),
                lease: grant.lease.clone(),
                job: grant.job.clone(),
                trial: grant.trial,
                seed: grant.seed,
                record: record.to_value(),
            };
            match exchange_retry(&cfg.coordinator, &upload, 3) {
                Ok(Msg::ResultOk { duplicate }) => {
                    if duplicate {
                        eprintln!(
                            "[cold-serve] worker {} result for job {} trial {} was a duplicate",
                            cfg.name, grant.job, grant.trial
                        );
                    }
                    return;
                }
                Ok(other) => format!("result upload rejected: {other:?}"),
                Err(e) => format!("result upload failed: {e}"),
            }
        }
        Ok(Err(e)) => e.to_string(),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            format!("trial panicked: {msg}")
        }
    };
    eprintln!(
        "[cold-serve] worker {} failed job {} trial {}: {error}",
        cfg.name, grant.job, grant.trial
    );
    // Deterministic failure: tell the coordinator now instead of
    // letting the lease run out its deadline. Best-effort — if this is
    // lost, the deadline path covers it.
    let _ = exchange(
        &cfg.coordinator,
        &Msg::TrialError { worker: cfg.name.clone(), lease: grant.lease, error },
    );
}
