//! Heuristically Optimized Trade-offs (HOT / FKP) generator.
//!
//! Table 1 compares against "HOT graphs" in the Li et al. / Fabrikant et
//! al. tradition. The tractable published generator in that family is
//! Fabrikant, Koutsoupias & Papadimitriou's tree model (the paper's
//! ref \[17\]): nodes arrive at uniformly random positions and each attaches
//! to the existing node `v` minimizing
//!
//! ```text
//! α · d(u, v) + h(v)
//! ```
//!
//! where `d` is Euclidean distance and `h(v)` is `v`'s hop count to the
//! root — a per-node tradeoff between last-mile cost and centrality. §2
//! credits this family with "many appealing features" while noting its
//! "cost function did not have a strong analogue to real-life costs",
//! which is exactly what Table 1's P (partial) scores record.

use cold_context::region::Point;
use cold_graph::AdjacencyMatrix;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// FKP model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FkpHot {
    /// Tradeoff weight `α ≥ 0`: `α → 0` gives stars, `α → ∞` gives
    /// dense-in-space trees (nearest-neighbor attachment).
    pub alpha: f64,
}

impl Default for FkpHot {
    fn default() -> Self {
        Self { alpha: 4.0 }
    }
}

impl FkpHot {
    /// Samples an FKP tree on `n` nodes; returns the topology and the node
    /// positions used.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> (AdjacencyMatrix, Vec<Point>) {
        assert!(self.alpha >= 0.0, "alpha must be nonnegative");
        let positions: Vec<Point> =
            (0..n).map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0))).collect();
        let mut m = AdjacencyMatrix::empty(n);
        let mut hops = vec![0usize; n];
        for u in 1..n {
            let parent = (0..u)
                .min_by(|&a, &b| {
                    let fa = self.alpha * positions[u].distance(&positions[a]) + hops[a] as f64;
                    let fb = self.alpha * positions[u].distance(&positions[b]) + hops[b] as f64;
                    fa.total_cmp(&fb).then(a.cmp(&b))
                })
                .expect("u >= 1 has predecessors");
            m.set_edge(u, parent, true);
            hops[u] = hops[parent] + 1;
        }
        (m, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_graph::components::matrix_is_connected;
    use cold_graph::metrics::degree_stats;
    use rand::SeedableRng;

    #[test]
    fn output_is_a_spanning_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, pos) = FkpHot::default().sample(25, &mut rng);
        assert_eq!(m.edge_count(), 24);
        assert_eq!(pos.len(), 25);
        assert!(matrix_is_connected(&m));
    }

    #[test]
    fn alpha_zero_gives_star() {
        // With α = 0 every node attaches to the root (hop cost 0).
        let mut rng = StdRng::seed_from_u64(2);
        let (m, _) = FkpHot { alpha: 0.0 }.sample(12, &mut rng);
        assert_eq!(m.degree(0), 11);
    }

    #[test]
    fn large_alpha_reduces_hubbiness() {
        let mut rng = StdRng::seed_from_u64(3);
        let (hubby, _) = FkpHot { alpha: 0.1 }.sample(60, &mut rng);
        let (spread, _) = FkpHot { alpha: 50.0 }.sample(60, &mut rng);
        assert!(
            degree_stats(&hubby.to_graph()).max > degree_stats(&spread.to_graph()).max,
            "small alpha should concentrate attachment"
        );
    }

    #[test]
    fn reproducible() {
        let a = FkpHot::default().sample(15, &mut StdRng::seed_from_u64(4));
        let b = FkpHot::default().sample(15, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.0, b.0);
    }
}
