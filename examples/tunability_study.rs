//! Tunability study — dial the cost knobs and watch the network family
//! change (a miniature of the paper's §6).
//!
//! ```sh
//! cargo run --release --example tunability_study
//! ```

use cold::sweep::{log_space, SweepPlan, SweepPoint};
use cold::ColdConfig;

fn main() {
    let n = 16;
    let trials = 5;
    let k2s = log_space(2.5e-5, 1.6e-3, 4);
    let k3s = [0.0, 10.0, 1000.0];
    let mut points = Vec::new();
    for &k3 in &k3s {
        for &k2 in &k2s {
            points.push(SweepPoint { k2, k3 });
        }
    }
    let plan = SweepPlan {
        base: ColdConfig::quick(n, 1e-4, 0.0),
        points,
        trials,
        stats: vec![
            "average_degree".into(),
            "cvnd".into(),
            "diameter".into(),
            "global_clustering".into(),
            "hubs".into(),
        ],
        seed: 2014,
        confidence: 0.95,
    };
    println!("sweeping {} (k2, k3) points x {trials} trials, n = {n} ...\n", plan.points.len());
    let cells = plan.run();

    println!(
        "{:>9} {:>7} | {:>8} {:>6} {:>5} {:>6} {:>5}",
        "k2", "k3", "avg deg", "cvnd", "diam", "gcc", "hubs"
    );
    for c in &cells {
        println!(
            "{:>9.1e} {:>7.0} | {:>8.2} {:>6.2} {:>5.1} {:>6.3} {:>5.1}",
            c.point.k2,
            c.point.k3,
            c.stat("average_degree").unwrap().mean,
            c.stat("cvnd").unwrap().mean,
            c.stat("diameter").unwrap().mean,
            c.stat("global_clustering").unwrap().mean,
            c.stat("hubs").unwrap().mean,
        );
    }

    println!("\nreadings (the paper's §6 narrative):");
    println!("  - average degree rises with k2 (direct links get cheaper relative to routes)");
    println!("  - CVND and hub concentration respond to k3, not to the context (§7)");
    println!("  - diameter is lowest at the extremes: meshes (high k2) and stars (high k3)");
    println!("  - clustering climbs from tree-like (~0) toward cliquish as k2 grows");
}
