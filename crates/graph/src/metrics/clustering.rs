//! Clustering coefficients (Fig 7).
//!
//! The paper uses the *global clustering coefficient* (GCC), the ratio of
//! three times the number of triangles to the number of connected triples
//! ("the number of triangles present in the graph compared to the maximum
//! number of triangles possible", §6). Trees score 0, cliques score 1, and
//! in the Topology Zoo 90% of networks fall below 0.25.

use crate::graph::Graph;

/// Number of triangles (3-cliques) in the graph.
///
/// Counts each triangle once by enumerating edges `(u, v)` with `u < v` and
/// intersecting their sorted neighbor lists above `v`.
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0usize;
    for (u, v) in g.edges() {
        // Intersect neighbors of u and v, counting only w > v so each
        // triangle {u < v < w} is counted exactly once.
        let (mut i, mut j) = (0usize, 0usize);
        let (nu, nv) = (g.neighbors(u), g.neighbors(v));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if nu[i] > v {
                        count += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    count
}

/// Number of connected triples (paths of length 2), `Σ_v C(deg(v), 2)`.
pub fn connected_triples(g: &Graph) -> usize {
    g.degrees().iter().map(|&d| d * d.saturating_sub(1) / 2).sum()
}

/// Global clustering coefficient: `3·triangles / connected triples`.
///
/// Returns `0.0` when the graph has no connected triples (e.g. a matching
/// or an empty graph), matching the convention that a triangle-free sparse
/// graph has no clustering.
pub fn global_clustering(g: &Graph) -> f64 {
    let triples = connected_triples(g);
    if triples == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / triples as f64
}

/// Average local clustering coefficient (Watts–Strogatz): the mean over all
/// nodes of `triangles through v / C(deg(v), 2)`, counting degree-<2 nodes
/// as 0.
pub fn average_local_clustering(g: &Graph) -> f64 {
    let n = g.n();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for v in 0..n {
        let nbrs = g.neighbors(v);
        let d = nbrs.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        total += links as f64 / (d * (d - 1) / 2) as f64;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_zero_clustering() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (2, 3), (2, 4)]).unwrap();
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_local_clustering(&g), 0.0);
    }

    #[test]
    fn clique_has_clustering_one() {
        let g = crate::AdjacencyMatrix::complete(5).to_graph();
        assert_eq!(triangle_count(&g), 10); // C(5,3)
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((average_local_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_triangle_with_tail() {
        // Triangle 0-1-2 plus pendant 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&g), 1);
        // Triples: deg = [2,2,3,1] → 1 + 1 + 3 + 0 = 5.
        assert_eq!(connected_triples(&g), 5);
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
        // Local: nodes 0,1 have cc 1; node 2 has 1/3; node 3 has 0.
        assert!((average_local_clustering(&g) - (1.0 + 1.0 + 1.0 / 3.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert_eq!(global_clustering(&Graph::from_edges(0, &[]).unwrap()), 0.0);
        assert_eq!(global_clustering(&Graph::from_edges(2, &[(0, 1)]).unwrap()), 0.0);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // K4 minus one edge: nodes 0-1-2-3, missing (0,3).
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&g), 2);
        // degrees [2,3,3,2] → triples 1+3+3+1 = 8; gcc = 6/8.
        assert!((global_clustering(&g) - 0.75).abs() < 1e-12);
    }
}
