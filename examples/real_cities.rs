//! Designing a network over real city locations (§3.1: "use real PoP
//! locations if required").
//!
//! The context's randomness is optional: here only the traffic matrix is
//! generated (gravity over census populations), while the PoP locations
//! are the real coordinates of Australian cities — a nod to the authors'
//! home network. Distances are planar approximations (degrees scaled to
//! ~km/100).
//!
//! ```sh
//! cargo run --release --example real_cities
//! ```

use cold::{ColdConfig, SynthesisMode};
use cold_context::import::context_from_csv;
use cold_context::{GravityModel, PopulationKind};
use cold_cost::CostParams;

/// City, x ≈ lon·cos(mean lat)·1.11, y ≈ lat·1.11 (unit ≈ 100 km),
/// population in millions.
const AUSTRALIA: &str = "\
# city,        x,      y,    population (millions)
Adelaide,    127.5,  -38.7,  1.4
Melbourne,   133.4,  -42.0,  5.1
Sydney,      139.1,  -37.6,  5.3
Brisbane,    140.9,  -30.5,  2.6
Perth,       106.6,  -35.4,  2.1
Canberra,    137.3,  -39.3,  0.5
Hobart,      135.5,  -47.6,  0.25
Darwin,      120.5,  -13.8,  0.15
Cairns,      134.3,  -18.8,  0.25
Townsville,  135.7,  -21.4,  0.2
Alice,       123.4,  -26.3,  0.03
Broome,      112.5,  -19.9,  0.02
";

fn main() {
    let (ctx, names) = context_from_csv(
        AUSTRALIA,
        PopulationKind::Constant { value: 0.1 }, // fallback, unused here
        GravityModel::raw(),
        0,
    )
    .expect("valid city table");
    println!("imported {} cities", ctx.n());

    // Costs: k1 = 1 per ~100 km of trench; bandwidth cost chosen so the
    // Melbourne–Sydney corridor justifies direct links; a hub costs the
    // equivalent of ~5 units (operations).
    let params = CostParams::new(2.0, 1.0, 2e-2, 5.0);
    let cfg = ColdConfig {
        context: cold_context::ContextConfig::paper_default(ctx.n()), // placeholder, not used
        params,
        ga: cold_ga::GaSettings::paper_default(0),
        mode: SynthesisMode::Initialized,
        random_greedy: Default::default(),
    };
    let r = cfg.synthesize_in_context(ctx, 7);

    println!(
        "\ndesigned backbone: {} links, cost {:.1} (bandwidth share {:.0}%)",
        r.network.link_count(),
        r.best_cost(),
        100.0 * r.network.cost.bandwidth / r.best_cost()
    );
    println!("links (by routed load):");
    let mut links = r.network.links.clone();
    links.sort_by(|a, b| b.load.total_cmp(&a.load));
    for l in &links {
        println!(
            "  {:<10} -- {:<10}  {:>6.0} km   load {:>6.2}",
            names[l.u],
            names[l.v],
            l.length * 100.0,
            l.load
        );
    }
    let s = &r.stats;
    println!(
        "\nstats: avg degree {:.2}, diameter {}, hubs {} of {}",
        s.average_degree,
        s.diameter,
        s.hubs,
        r.network.n()
    );
    // The big-population southeast corridor should be in the core.
    let melbourne = names.iter().position(|n| n == "Melbourne").unwrap();
    let sydney = names.iter().position(|n| n == "Sydney").unwrap();
    println!(
        "Melbourne degree {}, Sydney degree {}",
        r.network.topology.degree(melbourne),
        r.network.topology.degree(sydney)
    );
    let svg = cold::export::to_svg(&r.network, &r.context);
    std::fs::write("australia.svg", svg).expect("write australia.svg");
    println!("\nwrote australia.svg");
}
