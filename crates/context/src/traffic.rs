//! Dense traffic matrices.

use serde::{Deserialize, Serialize};

/// A dense `n × n` traffic matrix: `demand(s, t)` is the offered traffic
/// from PoP `s` to PoP `t`. Diagonal entries are zero (intra-PoP traffic
/// never crosses an inter-PoP link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major demands.
    data: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self { n, data: vec![0.0; n * n] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != n²`, any entry is negative/NaN, or the
    /// diagonal is nonzero.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "need n² entries");
        for s in 0..n {
            for t in 0..n {
                let x = data[s * n + t];
                assert!(x >= 0.0, "demand ({s},{t}) = {x} must be nonnegative");
                if s == t {
                    assert_eq!(x, 0.0, "diagonal must be zero");
                }
            }
        }
        Self { n, data }
    }

    /// Number of PoPs.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t`.
    #[inline]
    pub fn demand(&self, s: usize, t: usize) -> f64 {
        self.data[s * self.n + t]
    }

    /// Sets the demand from `s` to `t`.
    ///
    /// # Panics
    /// Panics on the diagonal or a negative value.
    pub fn set_demand(&mut self, s: usize, t: usize, value: f64) {
        assert!(s != t || value == 0.0, "diagonal must stay zero");
        assert!(value >= 0.0, "demand must be nonnegative");
        self.data[s * self.n + t] = value;
    }

    /// Total offered traffic over all ordered pairs.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Total traffic originating at `s` (row sum).
    pub fn row_sum(&self, s: usize) -> f64 {
        (0..self.n).map(|t| self.demand(s, t)).sum()
    }

    /// Whether `demand(s, t) == demand(t, s)` for all pairs (within `eps`).
    pub fn is_symmetric(&self, eps: f64) -> bool {
        for s in 0..self.n {
            for t in (s + 1)..self.n {
                if (self.demand(s, t) - self.demand(t, s)).abs() > eps {
                    return false;
                }
            }
        }
        true
    }

    /// Multiplies every demand by `factor` in place.
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor >= 0.0, "scale factor must be nonnegative");
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// A closure view suitable for `cold_graph::routing::route_traffic`.
    pub fn as_fn(&self) -> impl Fn(usize, usize) -> f64 + Copy + '_ {
        move |s, t| self.demand(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set() {
        let mut tm = TrafficMatrix::zeros(3);
        assert_eq!(tm.total(), 0.0);
        tm.set_demand(0, 1, 2.5);
        tm.set_demand(1, 0, 1.5);
        assert_eq!(tm.demand(0, 1), 2.5);
        assert_eq!(tm.total(), 4.0);
        assert_eq!(tm.row_sum(0), 2.5);
        assert!(!tm.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_rejected() {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set_demand(1, 1, 1.0);
    }

    #[test]
    fn from_rows_validates() {
        let tm = TrafficMatrix::from_rows(2, vec![0.0, 3.0, 4.0, 0.0]);
        assert_eq!(tm.demand(0, 1), 3.0);
        assert_eq!(tm.demand(1, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_demand_rejected() {
        TrafficMatrix::from_rows(2, vec![0.0, -1.0, 0.0, 0.0]);
    }

    #[test]
    fn scale_multiplies_everything() {
        let mut tm = TrafficMatrix::from_rows(2, vec![0.0, 2.0, 4.0, 0.0]);
        tm.scale(0.5);
        assert_eq!(tm.demand(0, 1), 1.0);
        assert_eq!(tm.demand(1, 0), 2.0);
    }

    #[test]
    fn as_fn_matches() {
        let tm = TrafficMatrix::from_rows(2, vec![0.0, 7.0, 1.0, 0.0]);
        let f = tm.as_fn();
        assert_eq!(f(0, 1), 7.0);
        assert_eq!(f(1, 1), 0.0);
    }
}
