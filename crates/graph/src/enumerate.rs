//! Exhaustive enumeration of labeled graphs on `n` nodes.
//!
//! §5 of the paper validates the GA by "comparing our results to the
//! results of brute-force enumeration … we at least ensure that for
//! networks of up to 8 PoPs that the GA always finds the real optimal
//! solution". This module provides that enumeration: every labeled simple
//! graph on `n` nodes is an edge-subset bitmask over the `C(n,2)` node
//! pairs, optionally filtered to connected graphs.
//!
//! Feasible sizes: `n = 7` means `2^21 ≈ 2·10⁶` graphs; `n = 8` means
//! `2^28 ≈ 2.7·10⁸` — enumeration itself is fine, but an APSP-based cost
//! evaluation per graph makes n = 8 a CPU-days job, so the brute-force
//! optimality harness (cold-heuristics) caps at `n ≤ 7` (see DESIGN.md §5).

use crate::adjacency::AdjacencyMatrix;
use crate::union_find::UnionFind;

/// Maximum `n` supported (so the edge mask fits in `u64`).
pub const MAX_ENUM_NODES: usize = 11;

/// Builds the adjacency matrix for an edge-subset bitmask.
///
/// Bit `p` of `mask` corresponds to flat pair index `p` (see
/// [`AdjacencyMatrix::pair_index`]).
pub fn matrix_from_mask(n: usize, mask: u64) -> AdjacencyMatrix {
    let mut m = AdjacencyMatrix::empty(n);
    let pairs = m.pair_count();
    for p in 0..pairs {
        if mask >> p & 1 == 1 {
            m.set_bit(p, true);
        }
    }
    m
}

/// Whether the graph encoded by `mask` is connected, without materializing
/// an adjacency matrix (union-find over the set bits).
pub fn mask_is_connected(n: usize, mask: u64, pairs: &[(usize, usize)]) -> bool {
    if n <= 1 {
        return true;
    }
    let mut uf = UnionFind::new(n);
    let mut bits = mask;
    while bits != 0 {
        let p = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let (u, v) = pairs[p];
        uf.union(u, v);
        if uf.set_count() == 1 {
            return true;
        }
    }
    uf.set_count() == 1
}

/// The flat pair table `(u, v)` for graphs on `n` nodes, indexed by pair
/// index — precompute once before a mask sweep.
pub fn pair_table(n: usize) -> Vec<(usize, usize)> {
    let m = AdjacencyMatrix::empty(n);
    (0..m.pair_count()).map(|p| m.index_pair(p)).collect()
}

/// Invokes `f` for every labeled graph on `n` nodes (as an edge mask), or
/// only the connected ones when `connected_only` is set.
///
/// Visits masks in ascending numeric order, so results are deterministic.
///
/// # Panics
/// Panics if `n > MAX_ENUM_NODES`.
pub fn for_each_graph_mask(n: usize, connected_only: bool, mut f: impl FnMut(u64)) {
    assert!(n <= MAX_ENUM_NODES, "enumeration supports n <= {MAX_ENUM_NODES}, got {n}");
    let pairs = pair_table(n);
    let total: u64 = 1u64 << pairs.len();
    // A connected graph on n >= 2 nodes needs >= n-1 edges; cheap popcount
    // prefilter before the union-find check.
    let min_edges = n.saturating_sub(1) as u32;
    let mut mask = 0u64;
    loop {
        if !connected_only || (mask.count_ones() >= min_edges && mask_is_connected(n, mask, &pairs))
        {
            f(mask);
        }
        mask += 1;
        if mask == total {
            break;
        }
    }
}

/// Number of connected labeled graphs on `n` nodes (sequence A001187).
pub fn connected_graph_count(n: usize) -> u64 {
    let mut count = 0u64;
    for_each_graph_mask(n, true, |_| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::matrix_is_connected;

    #[test]
    fn connected_counts_match_oeis_a001187() {
        // 1, 1, 1, 4, 38, 728, 26704 for n = 0..6.
        assert_eq!(connected_graph_count(1), 1);
        assert_eq!(connected_graph_count(2), 1);
        assert_eq!(connected_graph_count(3), 4);
        assert_eq!(connected_graph_count(4), 38);
        assert_eq!(connected_graph_count(5), 728);
    }

    #[test]
    fn total_graph_count_is_power_of_two() {
        let mut count = 0u64;
        for_each_graph_mask(4, false, |_| count += 1);
        assert_eq!(count, 1 << 6);
    }

    #[test]
    fn mask_connectivity_agrees_with_component_check() {
        let pairs = pair_table(5);
        for mask in 0..(1u64 << 10) {
            let quick = mask_is_connected(5, mask, &pairs);
            let full = matrix_is_connected(&matrix_from_mask(5, mask));
            assert_eq!(quick, full, "mask {mask:b}");
        }
    }

    #[test]
    fn matrix_from_mask_round_trips() {
        let pairs = pair_table(4);
        let mask = 0b101010u64 & ((1 << pairs.len()) - 1);
        let m = matrix_from_mask(4, mask);
        for (p, &(u, v)) in pairs.iter().enumerate() {
            assert_eq!(m.has_edge(u, v), mask >> p & 1 == 1);
        }
    }
}
