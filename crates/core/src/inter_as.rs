//! Multi-AS synthesis over shared cities (§2's extensibility example, §8).
//!
//! "COLD could naturally be extended to multiple ASes. Imagine the PoPs
//! are in fact cities, in which different networks may have presence. PoP
//! interconnects in same cities could then be assigned a cost, and we
//! could run the optimization with respect to this additional cost."
//!
//! Implementation: a shared city map is generated once; each AS selects a
//! population-weighted random subset of cities as its PoPs and runs the
//! ordinary COLD synthesis on that sub-context. ASes are then peered at
//! shared cities: for each AS pair, interconnects are opened at their
//! common cities in descending population order until either `max_peerings`
//! is reached or the marginal interconnect (whose price is
//! `interconnect_cost` each) stops being justified by the population it
//! serves.

use crate::synthesizer::{ColdConfig, SynthesisResult};
use cold_context::gravity::GravityModel;
use cold_context::population::{PopulationKind, PopulationModel};
use cold_context::region::Point;
use cold_context::rng::{derive_seed, rng_for};
use cold_context::Context;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a multi-AS synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterAsConfig {
    /// Number of cities on the shared map.
    pub cities: usize,
    /// Number of ASes to synthesize.
    pub as_count: usize,
    /// PoPs per AS (must be ≤ cities).
    pub pops_per_as: usize,
    /// Fixed cost of opening one interconnect at a shared city.
    pub interconnect_cost: f64,
    /// Maximum interconnects per AS pair.
    pub max_peerings: usize,
}

impl Default for InterAsConfig {
    fn default() -> Self {
        Self { cities: 30, as_count: 3, pops_per_as: 12, interconnect_cost: 20.0, max_peerings: 3 }
    }
}

/// One peering between two ASes at a shared city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peering {
    /// First AS index.
    pub as_a: usize,
    /// Second AS index.
    pub as_b: usize,
    /// City where the interconnect lives.
    pub city: usize,
    /// The interconnect's fixed cost.
    pub cost: f64,
}

/// A synthesized multi-AS topology.
#[derive(Debug)]
pub struct MultiAsNetwork {
    /// Shared city coordinates.
    pub cities: Vec<Point>,
    /// Shared city populations.
    pub city_population: Vec<f64>,
    /// Per-AS: which city each PoP lives in (`pops[a][i]` = city of AS
    /// `a`'s PoP `i`).
    pub pops: Vec<Vec<usize>>,
    /// Per-AS synthesis results (intra-AS networks).
    pub networks: Vec<SynthesisResult>,
    /// Inter-AS interconnects.
    pub peerings: Vec<Peering>,
}

impl MultiAsNetwork {
    /// Total cost: intra-AS network costs plus interconnect costs.
    pub fn total_cost(&self) -> f64 {
        self.networks.iter().map(|r| r.best_cost()).sum::<f64>()
            + self.peerings.iter().map(|p| p.cost).sum::<f64>()
    }

    /// Cities where both ASes have a PoP.
    pub fn shared_cities(&self, a: usize, b: usize) -> Vec<usize> {
        self.pops[a].iter().copied().filter(|c| self.pops[b].contains(c)).collect()
    }
}

/// Synthesizes a multi-AS topology.
///
/// `base` supplies the cost parameters and GA settings used for every AS;
/// its context model is ignored (the shared city map replaces it).
pub fn synthesize_multi_as(base: &ColdConfig, cfg: &InterAsConfig, seed: u64) -> MultiAsNetwork {
    assert!(cfg.pops_per_as >= 3, "each AS needs at least 3 PoPs");
    assert!(cfg.pops_per_as <= cfg.cities, "more PoPs per AS than cities");
    assert!(cfg.as_count >= 1);
    // Shared map: uniform cities with exponential populations (the paper's
    // default context, reused at the city level).
    let mut map_rng = rng_for(seed, 0xC171);
    let s = cold_context::PAPER_REGION_SCALE;
    let cities: Vec<Point> = (0..cfg.cities)
        .map(|_| Point::new(map_rng.gen_range(0.0..s), map_rng.gen_range(0.0..s)))
        .collect();
    let city_population = PopulationKind::default().sample(cfg.cities, &mut map_rng);

    // Each AS picks a population-weighted sample of cities (big cities are
    // likelier to host many networks, creating shared presence).
    let total_pop: f64 = city_population.iter().sum();
    let mut pops: Vec<Vec<usize>> = Vec::with_capacity(cfg.as_count);
    for a in 0..cfg.as_count {
        let mut rng = rng_for(seed, 0xA5_00 + a as u64);
        let mut chosen: Vec<usize> = Vec::with_capacity(cfg.pops_per_as);
        while chosen.len() < cfg.pops_per_as {
            // Weighted draw without replacement.
            let mut target = rng.gen_range(0.0..total_pop);
            let mut pick = cfg.cities - 1;
            for (c, &p) in city_population.iter().enumerate() {
                target -= p;
                if target < 0.0 {
                    pick = c;
                    break;
                }
            }
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        chosen.sort_unstable();
        pops.push(chosen);
    }

    // Intra-AS synthesis on each sub-context.
    let networks: Vec<SynthesisResult> = pops
        .iter()
        .enumerate()
        .map(|(a, cities_of_as)| {
            let positions: Vec<Point> = cities_of_as.iter().map(|&c| cities[c]).collect();
            let populations: Vec<f64> = cities_of_as.iter().map(|&c| city_population[c]).collect();
            let traffic =
                GravityModel::paper_default().traffic_matrix(&populations, Some(&positions));
            let ctx = Context::new(positions, populations, traffic);
            base.synthesize_in_context(ctx, derive_seed(seed, 0x0A50 + a as u64))
        })
        .collect();

    // Peering: for each AS pair, open interconnects at shared cities in
    // descending population order.
    let mut peerings = Vec::new();
    for a in 0..cfg.as_count {
        for b in (a + 1)..cfg.as_count {
            let mut shared: Vec<usize> =
                pops[a].iter().copied().filter(|c| pops[b].contains(c)).collect();
            shared.sort_by(|&x, &y| {
                city_population[y].total_cmp(&city_population[x]).then(x.cmp(&y))
            });
            for &city in shared.iter().take(cfg.max_peerings) {
                peerings.push(Peering { as_a: a, as_b: b, city, cost: cfg.interconnect_cost });
            }
        }
    }
    MultiAsNetwork { cities, city_population, pops, networks, peerings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> ColdConfig {
        ColdConfig::quick(10, 1e-4, 10.0)
    }

    #[test]
    fn multi_as_structure_is_consistent() {
        let cfg = InterAsConfig { cities: 15, as_count: 3, pops_per_as: 8, ..Default::default() };
        let m = synthesize_multi_as(&quick_base(), &cfg, 1);
        assert_eq!(m.networks.len(), 3);
        assert_eq!(m.pops.len(), 3);
        for (a, net) in m.networks.iter().enumerate() {
            assert_eq!(m.pops[a].len(), 8);
            assert_eq!(net.network.n(), 8);
            // PoPs sit at their city coordinates.
            for (i, &c) in m.pops[a].iter().enumerate() {
                assert_eq!(net.context.positions[i], m.cities[c]);
            }
        }
    }

    #[test]
    fn peerings_only_at_shared_cities() {
        let cfg = InterAsConfig { cities: 12, as_count: 3, pops_per_as: 9, ..Default::default() };
        let m = synthesize_multi_as(&quick_base(), &cfg, 2);
        for p in &m.peerings {
            assert!(m.pops[p.as_a].contains(&p.city), "AS {} missing city {}", p.as_a, p.city);
            assert!(m.pops[p.as_b].contains(&p.city));
            assert_eq!(p.cost, cfg.interconnect_cost);
        }
        // With 9 of 12 cities per AS, every pair must share cities.
        assert!(!m.peerings.is_empty());
    }

    #[test]
    fn peering_cap_respected() {
        let cfg = InterAsConfig {
            cities: 10,
            as_count: 2,
            pops_per_as: 10,
            max_peerings: 2,
            ..Default::default()
        };
        let m = synthesize_multi_as(&quick_base(), &cfg, 3);
        assert!(m.peerings.len() <= 2);
        // All cities shared ⇒ exactly the cap.
        assert_eq!(m.peerings.len(), 2);
        // Interconnects favor the biggest shared cities.
        let mut picked: Vec<f64> = m.peerings.iter().map(|p| m.city_population[p.city]).collect();
        picked.sort_by(f64::total_cmp);
        let max_pop = m.city_population.iter().cloned().fold(0.0, f64::max);
        assert_eq!(picked.pop().unwrap(), max_pop);
    }

    #[test]
    fn total_cost_adds_up() {
        let cfg = InterAsConfig { cities: 12, as_count: 2, pops_per_as: 8, ..Default::default() };
        let m = synthesize_multi_as(&quick_base(), &cfg, 4);
        let sum: f64 = m.networks.iter().map(|r| r.best_cost()).sum::<f64>()
            + m.peerings.len() as f64 * cfg.interconnect_cost;
        assert!((m.total_cost() - sum).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let cfg = InterAsConfig { cities: 12, as_count: 2, pops_per_as: 6, ..Default::default() };
        let a = synthesize_multi_as(&quick_base(), &cfg, 5);
        let b = synthesize_multi_as(&quick_base(), &cfg, 5);
        assert_eq!(a.pops, b.pops);
        assert_eq!(a.peerings.len(), b.peerings.len());
        for (x, y) in a.networks.iter().zip(&b.networks) {
            assert_eq!(x.network.topology, y.network.topology);
        }
    }
}
