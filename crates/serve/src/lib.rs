//! # cold-serve — synthesis as a service
//!
//! A dependency-free (std + the workspace's vendored `serde_json`)
//! HTTP/1.1 front end over the COLD synthesizer: clients `POST` a
//! [`cold::ColdConfig`] and get back a content-addressed job id; a fixed
//! pool of workers drains a bounded FIFO queue through the same guarded
//! campaign machinery the `cold-gen` CLI uses; results land in an
//! on-disk cache keyed by the canonical configuration fingerprint, so a
//! semantically identical resubmission — however its JSON was spelled —
//! is a cache hit, and an identical submission *while the first is still
//! running* coalesces onto the in-flight job.
//!
//! ## Routes
//!
//! | route | answer |
//! |-------|--------|
//! | `POST /jobs` | `202` queued, `200` cache/in-flight hit, `503` + `Retry-After` queue full, `400` typed error |
//! | `GET /jobs/{id}` | `200` status + live progress, `404` typed error |
//! | `GET /jobs/{id}/result` | `200` result document, `202` not ready, `404` |
//! | `GET /healthz` | `200` liveness + queue depth |
//! | `GET /metrics` | `200` Prometheus-style text from the `cold-obs` registry |
//! | `POST /admin/shutdown` | `200`, then drains exactly like SIGTERM |
//!
//! ## Crash-safety contract
//!
//! Synthesis is a pure function of `(config, seed)`, so the service
//! never invents state: every job runs as a checkpointed campaign
//! (`checkpoint_every = 1`) inside its cache directory. A drain cancels
//! between trials; a kill loses at most the trial in flight; either way
//! a restarted server re-scans the cache, re-enqueues unfinished jobs,
//! and resumes them from their checkpoints (`job_started` journal events
//! carry the resumed-trial count). A worker panic — including the armed
//! `serve.worker_panic` chaos site — fails at most one job attempt,
//! never the process.
//!
//! ## Distributed mode
//!
//! `cold-serve --role coordinator` additionally listens on a worker
//! protocol port and shards each campaign's trials across remote
//! `cold-serve --role worker` processes with work-stealing leases,
//! heartbeats, and checkpoint migration — see the [`dist`] module and
//! `DESIGN.md` §16. With zero workers the coordinator runs trials
//! inline, so distributed mode strictly adds capacity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dist;
pub mod http;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod server;

pub use cache::ResultCache;
pub use dist::{DistConfig, DistPool, WorkerConfig};
pub use http::{client_request, ClientResponse, Request, Response};
pub use job::{JobEntry, JobMode, JobProgress, JobSpec, JobStatus};
pub use queue::{BoundedQueue, QueueFull};
pub use server::{Server, ServerConfig, ServerHandle};
