//! GraphML import — closing the loop with external topologies.
//!
//! §8's future work maps "real networks to parameters `k_i`" (the [ABC
//! module](crate::abc) implements the estimation); this module supplies
//! its input: a reader for GraphML topologies, the format of the Internet
//! Topology Zoo and of this crate's own [`crate::export::to_graphml`].
//!
//! The parser is a deliberately small, dependency-free scanner for the
//! GraphML subset those sources use: one `<graph>`, `<node id="…">` /
//! `<edge source="…" target="…">` elements, optional `<data key="…">`
//! values for node coordinates (`x`/`y`) and population. It is **not** a
//! general XML parser — exotic documents (namespaced prefixes on element
//! names, CDATA, nested graphs) are rejected rather than misread.

use cold_graph::AdjacencyMatrix;
use std::collections::HashMap;

/// An imported topology with whatever annotations the file carried.
#[derive(Debug, Clone)]
pub struct ImportedGraph {
    /// The topology (indices follow first appearance of node ids).
    pub topology: AdjacencyMatrix,
    /// Original node ids, aligned with indices.
    pub node_ids: Vec<String>,
    /// Node coordinates, when every node carried `x` and `y` data.
    pub positions: Option<Vec<cold_context::Point>>,
    /// Node populations, when every node carried `population` data.
    pub populations: Option<Vec<f64>>,
}

/// Import errors (byte-offset diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphMlError {
    /// Approximate byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for GraphMlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graphml error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for GraphMlError {}

fn err(offset: usize, message: impl Into<String>) -> GraphMlError {
    GraphMlError { offset, message: message.into() }
}

/// Extracts `name="value"` from an element's attribute text.
fn attr(text: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('"')? + start;
    Some(unescape(&text[start..end]))
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a GraphML document (see module docs for the supported subset).
///
/// # Errors
/// Malformed markup, duplicate node ids, unknown edge endpoints,
/// self-loops, or nested `<graph>` elements.
pub fn parse_graphml(text: &str) -> Result<ImportedGraph, GraphMlError> {
    if text.matches("<graph ").count() + text.matches("<graph>").count() > 1 {
        return Err(err(0, "multiple <graph> elements are not supported"));
    }
    let mut node_ids: Vec<String> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut node_data: Vec<HashMap<String, f64>> = Vec::new();

    let mut cursor = 0usize;
    let bytes = text;
    while let Some(open_rel) = bytes[cursor..].find('<') {
        let open = cursor + open_rel;
        let close = bytes[open..]
            .find('>')
            .map(|c| open + c)
            .ok_or_else(|| err(open, "unterminated tag"))?;
        let tag = &bytes[open + 1..close];
        cursor = close + 1;
        if let Some(rest) = tag.strip_prefix("node") {
            if !rest.starts_with([' ', '\t', '\n']) && !rest.is_empty() {
                continue; // e.g. <nodefoo>, not ours
            }
            let id = attr(tag, "id").ok_or_else(|| err(open, "<node> missing id"))?;
            if index.contains_key(&id) {
                return Err(err(open, format!("duplicate node id `{id}`")));
            }
            index.insert(id.clone(), node_ids.len());
            node_ids.push(id);
            let mut data = HashMap::new();
            // If not self-closing, scan <data> children up to </node>.
            if !tag.ends_with('/') {
                let end = bytes[cursor..]
                    .find("</node>")
                    .map(|e| cursor + e)
                    .ok_or_else(|| err(open, "unterminated <node>"))?;
                let body = &bytes[cursor..end];
                let mut dcur = 0usize;
                while let Some(drel) = body[dcur..].find("<data") {
                    let dopen = dcur + drel;
                    let dtag_end = body[dopen..]
                        .find('>')
                        .map(|c| dopen + c)
                        .ok_or_else(|| err(open, "unterminated <data>"))?;
                    let key = attr(&body[dopen..dtag_end], "key")
                        .ok_or_else(|| err(open, "<data> missing key"))?;
                    let vend = body[dtag_end..]
                        .find("</data>")
                        .map(|e| dtag_end + e)
                        .ok_or_else(|| err(open, "unterminated <data> value"))?;
                    let raw = body[dtag_end + 1..vend].trim();
                    if let Ok(v) = raw.parse::<f64>() {
                        // `pop` is the key id our own exporter uses for the
                        // population attribute; normalize it.
                        let key = if key == "pop" { "population".to_string() } else { key };
                        data.insert(key, v);
                    }
                    dcur = vend + 7;
                }
                cursor = end + "</node>".len();
            }
            node_data.push(data);
        } else if let Some(rest) = tag.strip_prefix("edge") {
            if !rest.starts_with([' ', '\t', '\n']) && !rest.is_empty() {
                continue;
            }
            let s = attr(tag, "source").ok_or_else(|| err(open, "<edge> missing source"))?;
            let t = attr(tag, "target").ok_or_else(|| err(open, "<edge> missing target"))?;
            let &si = index
                .get(&s)
                .ok_or_else(|| err(open, format!("edge references unknown node `{s}`")))?;
            let &ti = index
                .get(&t)
                .ok_or_else(|| err(open, format!("edge references unknown node `{t}`")))?;
            if si == ti {
                return Err(err(open, format!("self-loop on `{s}` is not a valid PoP link")));
            }
            edges.push((si, ti));
            // Skip any edge body (we don't need edge data for import).
            if !tag.ends_with('/') {
                if let Some(e) = bytes[cursor..].find("</edge>") {
                    cursor += e + "</edge>".len();
                }
            }
        }
    }
    let n = node_ids.len();
    if n == 0 {
        return Err(err(0, "no <node> elements found"));
    }
    let mut topology = AdjacencyMatrix::empty(n);
    for (u, v) in edges {
        topology.set_edge(u, v, true);
    }
    let positions = if node_data.iter().all(|d| d.contains_key("x") && d.contains_key("y")) {
        Some(node_data.iter().map(|d| cold_context::Point::new(d["x"], d["y"])).collect())
    } else {
        None
    };
    let populations = if node_data.iter().all(|d| d.contains_key("population")) {
        Some(node_data.iter().map(|d| d["population"]).collect())
    } else {
        None
    };
    Ok(ImportedGraph { topology, node_ids, positions, populations })
}

impl ImportedGraph {
    /// Builds a synthesis [`cold_context::Context`] when the file carried
    /// both coordinates and populations — enabling direct ABC fitting
    /// against the imported network.
    pub fn to_context(&self) -> Option<cold_context::Context> {
        let positions = self.positions.clone()?;
        let populations = self.populations.clone()?;
        let traffic = cold_context::GravityModel::paper_default()
            .traffic_matrix(&populations, Some(&positions));
        Some(cold_context::Context::new(positions, populations, traffic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_graphml;
    use crate::ColdConfig;

    #[test]
    fn round_trips_our_own_exports() {
        let r = ColdConfig::quick(9, 4e-4, 10.0).synthesize(1);
        let xml = to_graphml(&r.network, &r.context);
        let imported = parse_graphml(&xml).expect("own output parses");
        assert_eq!(imported.topology, r.network.topology);
        assert_eq!(imported.node_ids.len(), 9);
        let pos = imported.positions.as_ref().expect("exported files carry x/y");
        for (a, b) in pos.iter().zip(&r.context.positions) {
            assert!((a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
        }
        let pops = imported.populations.as_ref().expect("exported files carry population");
        for (a, b) in pops.iter().zip(&r.context.populations) {
            assert!((a - b).abs() < 1e-9);
        }
        // And the context rebuilds for ABC use.
        let ctx = imported.to_context().unwrap();
        assert_eq!(ctx.n(), 9);
    }

    #[test]
    fn parses_minimal_zoo_style_document() {
        let xml = r#"<?xml version="1.0"?>
<graphml><graph edgedefault="undirected">
  <node id="Adelaide"/>
  <node id="Sydney"/>
  <node id="Perth"/>
  <edge source="Adelaide" target="Sydney"/>
  <edge source="Adelaide" target="Perth"/>
</graph></graphml>"#;
        let g = parse_graphml(xml).unwrap();
        assert_eq!(g.node_ids, vec!["Adelaide", "Sydney", "Perth"]);
        assert_eq!(g.topology.edge_count(), 2);
        assert!(g.topology.has_edge(0, 1));
        assert!(g.topology.has_edge(0, 2));
        assert!(g.positions.is_none());
        assert!(g.to_context().is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_graphml("<graphml></graphml>").is_err(), "no nodes");
        let dup = r#"<graph><node id="a"/><node id="a"/></graph>"#;
        assert!(parse_graphml(dup).unwrap_err().message.contains("duplicate"));
        let dangling = r#"<graph><node id="a"/><edge source="a" target="zz"/></graph>"#;
        assert!(parse_graphml(dangling).unwrap_err().message.contains("unknown node"));
        let selfloop = r#"<graph><node id="a"/><edge source="a" target="a"/></graph>"#;
        assert!(parse_graphml(selfloop).unwrap_err().message.contains("self-loop"));
        let nested = r#"<graph><graph></graph></graph>"#;
        assert!(parse_graphml(nested).unwrap_err().message.contains("multiple"));
    }

    #[test]
    fn entity_escapes_in_ids() {
        let xml = r#"<graph><node id="AT&amp;T"/><node id="B"/>
<edge source="AT&amp;T" target="B"/></graph>"#;
        let g = parse_graphml(xml).unwrap();
        assert_eq!(g.node_ids[0], "AT&T");
        assert_eq!(g.topology.edge_count(), 1);
    }

    #[test]
    fn abc_can_fit_an_imported_network() {
        // End-to-end §8 workflow: export → import → summary → ABC.
        let r = ColdConfig::quick(10, 1e-4, 100.0).synthesize(3);
        let xml = to_graphml(&r.network, &r.context);
        let imported = parse_graphml(&xml).unwrap();
        let stats = crate::NetworkStats::from_matrix(&imported.topology).unwrap();
        let target = crate::abc::TargetSummary::from_stats(&stats);
        let cfg = ColdConfig::quick(10, 1e-4, 10.0);
        let abc_cfg =
            crate::abc::AbcConfig { candidates: 6, trials_per_candidate: 1, ..Default::default() };
        let posterior = crate::abc::fit(&cfg, &target, &abc_cfg, 4);
        assert!(!posterior.is_empty());
        assert!(posterior[0].distance.is_finite());
    }
}
