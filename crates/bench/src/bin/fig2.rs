//! Regenerates Figure 2 (ER vs 3K-matching graphs of a small example).
fn main() {
    let opts = cold_bench::ExpOptions::from_args();
    let doc = cold_bench::experiments::fig2::run(&opts);
    opts.write_json("fig2", &doc);
}
