//! The *Greedy attachment* heuristic (§5): "Like complete and MST, but
//! inter-hub connections are chosen greedily for each new hub": the new hub
//! first takes its best single link to an existing hub, then keeps adding
//! links while each addition reduces the network cost.

use crate::hub_state::{best_single_hub, HubNetwork};
use crate::HeuristicResult;
use cold_cost::CostEvaluator;

/// Greedily links freshly promoted hub `new_hub` to existing hubs:
/// repeatedly add the single cost-minimizing link while cost decreases.
/// Returns the updated network and its cost; the first link is mandatory
/// (the hub must join the hub subgraph) even if it raises cost.
pub(crate) fn greedy_link_new_hub(
    mut net: HubNetwork,
    new_hub: usize,
    eval: &CostEvaluator<'_>,
) -> (HubNetwork, f64) {
    let mut linked: Vec<usize> = Vec::new();
    let mut current_cost = f64::INFINITY;
    loop {
        let mut best: Option<(usize, f64)> = None;
        for &h in net.hubs() {
            if h == new_hub || linked.contains(&h) {
                continue;
            }
            let mut trial = net.clone();
            trial.set_hub_links(with_link(net.hub_links(), new_hub, h));
            let c = trial.cost(eval);
            if best.as_ref().is_none_or(|&(_, bc)| c < bc) {
                best = Some((h, c));
            }
        }
        let Some((h, c)) = best else { break };
        // The first link is mandatory (the hub subgraph must stay
        // connected); later links only if they strictly reduce cost.
        if linked.is_empty() || c < current_cost {
            net.set_hub_links(with_link(net.hub_links(), new_hub, h));
            linked.push(h);
            current_cost = c;
        } else {
            break;
        }
    }
    (net, current_cost)
}

/// `links` plus the edge `{a, b}` (idempotent).
fn with_link(links: &[(usize, usize)], a: usize, b: usize) -> Vec<(usize, usize)> {
    let e = if a < b { (a, b) } else { (b, a) };
    let mut l = links.to_vec();
    if !l.contains(&e) {
        l.push(e);
    }
    l
}

/// Runs the Greedy-attachment heuristic to a local optimum.
pub fn greedy_attachment(eval: &CostEvaluator<'_>) -> HeuristicResult {
    let (mut net, mut cost) = best_single_hub(eval);
    loop {
        let mut best: Option<(HubNetwork, f64)> = None;
        for cand in net.leaves() {
            let mut trial = net.clone();
            trial.promote(cand, &[]);
            let (trial, c) = greedy_link_new_hub(trial, cand, eval);
            if c < cost && best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                best = Some((trial, c));
            }
        }
        match best {
            Some((next, c)) => {
                net = next;
                cost = c;
            }
            None => break,
        }
    }
    let topology = net.to_matrix(|u, v| eval.ctx.distance(u, v));
    HeuristicResult { topology, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_context::ContextConfig;
    use cold_cost::CostParams;

    #[test]
    fn result_is_connected_and_consistent() {
        let ctx = ContextConfig::paper_default(12).generate(9);
        let eval = CostEvaluator::new(&ctx, CostParams::paper(1e-4, 10.0));
        let r = greedy_attachment(&eval);
        assert!(cold_graph::components::matrix_is_connected(&r.topology));
        assert!((eval.cost(&r.topology).unwrap() - r.cost).abs() < 1e-9);
    }

    #[test]
    fn never_worse_than_star() {
        let ctx = ContextConfig::paper_default(10).generate(10);
        let eval = CostEvaluator::new(&ctx, CostParams::paper(4e-4, 10.0));
        let (_, star_cost) = crate::hub_state::best_single_hub(&eval);
        assert!(greedy_attachment(&eval).cost <= star_cost + 1e-9);
    }

    #[test]
    fn promotes_hubs_when_length_cost_rewards_it() {
        // With the paper's k0 = 10, k1 = 1 and no hub cost, spreading hubs
        // lets leaves attach to nearby hubs, cutting the k1 length cost, so
        // the heuristic must promote beyond the single-hub star.
        let ctx = ContextConfig::paper_default(12).generate(11);
        let eval = CostEvaluator::new(&ctx, CostParams::paper(1.6e-3, 0.0));
        let r = greedy_attachment(&eval);
        let hubs = r.topology.degrees().iter().filter(|&&d| d > 1).count();
        assert!(hubs >= 2, "expected multiple hubs, got {hubs}");
        let (_, star_cost) = crate::hub_state::best_single_hub(&eval);
        assert!(r.cost < star_cost, "promotion must strictly improve on the star");
    }
}
