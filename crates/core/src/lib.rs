//! # COLD: Combined Optimization and Layered Design
//!
//! A from-scratch Rust implementation of the PoP-level network topology
//! synthesizer from *"COLD: PoP-level Network Topology Synthesis"* (Bowden,
//! Roughan, Bean — ACM CoNEXT 2014).
//!
//! COLD generates ensembles of realistic PoP-level data networks by
//! balancing randomness and design: the *context* (PoP locations and a
//! gravity-model traffic matrix) is random, while the network built for
//! each context is the (heuristically) cost-optimal design under the
//! four-parameter objective
//!
//! ```text
//! min Σ_links (k0 + k1·ℓ + k2·ℓ·w)  +  k3·#hubs
//! ```
//!
//! subject to carrying all offered traffic on shortest-path routes.
//!
//! ## Quick start
//!
//! ```
//! use cold::{ColdConfig, SynthesisMode};
//!
//! // 12 PoPs, paper cost preset (k0=10, k1=1), chosen k2/k3, quick GA.
//! let config = ColdConfig::quick(12, 4e-4, 10.0);
//! let result = config.synthesize(42);
//! let net = &result.network;
//! println!(
//!     "{} PoPs, {} links, cost {:.1}",
//!     net.n(),
//!     net.link_count(),
//!     net.total_cost()
//! );
//! assert!(net.link_count() >= net.n() - 1); // connected by construction
//! ```
//!
//! ## Module map
//!
//! - [`synthesizer`] — the top-level API: config → synthesized network(s).
//! - [`objective`] — the COLD cost function as a GA [`cold_ga::Objective`].
//! - [`stats`] — the §6 statistics bundle for a topology.
//! - [`report`] — Markdown ensemble reports (stats + CIs + costs +
//!   survivability).
//! - [`bootstrap`] — bootstrap confidence intervals (the error bars of
//!   Figs 3 and 5).
//! - [`sweep`] — parameter sweeps over `(k2, k3)` grids with parallel
//!   trials (Figs 5–9).
//! - [`zoo`] — a surrogate "Topology Zoo" standing in for the dataset of
//!   ref \[16\] (see DESIGN.md §5 for the substitution rationale).
//! - [`router_level`] — template-based router-level expansion of a
//!   PoP-level network (the layered step previewed in §1/§8).
//! - [`inter_as`] — multi-AS synthesis over shared cities (§2's
//!   extensibility example).
//! - [`abc`] — Approximate Bayesian Computation to fit `k` parameters to
//!   an observed network (§8 future work).
//! - [`resilience`] — redundancy-aware synthesis: a bridge-outage cost on
//!   top of eq. (2), the constraint extension §2 invites, plus
//!   survivability analysis.
//! - [`evolution`] — brown-field incremental design: grow the context and
//!   re-optimize with legacy links as sunk costs (§3's "networks are
//!   rarely designed from scratch – they evolve").
//! - [`evolve`] — the evolution subsystem: warm-started synthesis over an
//!   [`EvolutionPlan`] of context perturbations, with a rewiring
//!   [`ChangeCosts`] penalty and time-sliced [`TopologySchedule`] output
//!   (DESIGN.md §17).
//! - [`export`] — DOT / GraphML / JSON / SVG exporters for simulation
//!   hand-off and visualization.
//! - [`failure`] — single-link failure analysis on the synthesized
//!   artifact (stranded traffic, reroute overload, path stretch).
//! - [`graphml_in`] — GraphML *import* (Topology-Zoo-style documents and
//!   this crate's own exports), feeding external networks into the ABC
//!   fitting workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abc;
pub mod bootstrap;
pub mod checkpoint;
pub mod error;
pub mod evolution;
pub mod evolve;
pub mod export;
pub mod failure;
pub mod fingerprint;
pub mod graphml_in;
pub mod inter_as;
pub mod objective;
pub mod pareto;
pub mod report;
pub mod resilience;
pub mod router_level;
pub mod stats;
pub mod sweep;
pub mod synthesizer;
pub mod zoo;

pub use checkpoint::{
    run_campaign, run_campaign_controlled, CampaignCheckpoint, CampaignControl, TrialRecord,
};
pub use cold_ga::StopReason;
pub use error::ColdError;
pub use evolve::{
    change_penalty, embed_parent, run_plan, run_plan_progress, try_synthesize_warm,
    try_synthesize_warm_in_context, ChangeCosts, ChangePenaltyObjective, EvolutionPlan, PlanStep,
    RewiringDiff, ScheduleStep, StepConvergence, TopologySchedule, WARM_SALT,
};
pub use fingerprint::{canonical_json, fingerprint_hex, job_fingerprint, value_fingerprint};
pub use objective::ColdObjective;
pub use pareto::{
    try_synthesize_pareto, try_synthesize_pareto_in_context, ColdMultiObjective, ParetoFrontMember,
    ParetoSynthesisResult,
};
pub use stats::NetworkStats;
pub use synthesizer::{
    join_abandoned_watchdog_threads, ColdConfig, EnsembleOutcome, ProgressSink, SynthesisMode,
    SynthesisResult, TrialFailure, TrialRunner, RETRY_SALT,
};

// Re-export the component crates so `cold` is a one-stop dependency.
pub use cold_baselines as baselines;
pub use cold_context as context;
pub use cold_cost as cost;
pub use cold_ga as ga;
pub use cold_graph as graph;
pub use cold_heuristics as heuristics;
