//! Mutation operators (§4.1.2).
//!
//! Two mutation types:
//!
//! - **Link mutation**: a pair `(m⁺, m⁻)` of geometric(½) counts; `m⁺`
//!   existing links are removed and `m⁻` absent links are added, "giving an
//!   average of two link changes each time a mutation occurs".
//! - **Node mutation**: "one of the non-leaf nodes is chosen uniformly at
//!   random and made into a leaf node, with its only link now running to
//!   the closest non-leaf node." This operator is what lets high-`k3`
//!   optimizations discover hub-and-spoke structure quickly (§7).
//!
//! Mutated offspring may be disconnected; the engine repairs them.

use crate::Objective;
use cold_graph::AdjacencyMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Samples a geometric random variable with success probability `p`,
/// counting failures before the first success (support `{0, 1, …}`, mean
/// `(1−p)/p`; `p = ½` ⇒ mean 1).
pub fn geometric(p: f64, rng: &mut StdRng) -> usize {
    debug_assert!(p > 0.0 && p <= 1.0);
    let mut k = 0usize;
    while rng.gen_range(0.0..1.0) >= p {
        k += 1;
        if k > 10_000 {
            // Practically unreachable for sane p; guards a degenerate RNG.
            break;
        }
    }
    k
}

/// Link mutation: removes `m⁺ ~ Geom(p)` random existing links and adds
/// `m⁻ ~ Geom(p)` random absent links (each capped by availability).
pub fn link_mutation(topology: &mut AdjacencyMatrix, p: f64, rng: &mut StdRng) {
    link_mutation_in(topology, p, None, rng);
}

/// Link mutation over a restricted candidate universe: like
/// [`link_mutation`], but when `universe` is `Some(pairs)` (sorted pair
/// indices) only those pairs may be **added**. Removals always range over
/// every existing link, so pruning never strands an edge the optimizer
/// wants gone. `None` is exactly [`link_mutation`] — same RNG stream,
/// same results.
pub fn link_mutation_in(
    topology: &mut AdjacencyMatrix,
    p: f64,
    universe: Option<&[usize]>,
    rng: &mut StdRng,
) {
    let m_plus = geometric(p, rng);
    let m_minus = geometric(p, rng);
    let mut present: Vec<usize> = (0..topology.pair_count()).filter(|&i| topology.bit(i)).collect();
    let mut absent: Vec<usize> = match universe {
        Some(pairs) => pairs.iter().copied().filter(|&i| !topology.bit(i)).collect(),
        None => (0..topology.pair_count()).filter(|&i| !topology.bit(i)).collect(),
    };
    for _ in 0..m_plus.min(present.len()) {
        let i = rng.gen_range(0..present.len());
        let pair = present.swap_remove(i);
        topology.set_bit(pair, false);
    }
    for _ in 0..m_minus.min(absent.len()) {
        let i = rng.gen_range(0..absent.len());
        let pair = absent.swap_remove(i);
        topology.set_bit(pair, true);
    }
}

/// Node mutation: picks a non-leaf node uniformly at random, removes all
/// its links, and reattaches it by a single link to the closest remaining
/// non-leaf node (by `objective.distance`). Falls back to the closest node
/// of any degree when no other non-leaf remains.
///
/// No-op when the graph has no non-leaf node (e.g. a single edge).
pub fn node_mutation<O: Objective>(
    topology: &mut AdjacencyMatrix,
    objective: &O,
    rng: &mut StdRng,
) {
    let n = topology.n();
    if n < 3 {
        return;
    }
    let degrees = topology.degrees();
    let non_leaves: Vec<usize> = (0..n).filter(|&v| degrees[v] > 1).collect();
    if non_leaves.is_empty() {
        return;
    }
    let victim = non_leaves[rng.gen_range(0..non_leaves.len())];
    // Strip all links from the victim.
    for u in 0..n {
        if u != victim && topology.has_edge(u, victim) {
            topology.set_edge(u, victim, false);
        }
    }
    // Reattach to the closest non-leaf (recomputed after stripping), else
    // the closest node overall.
    let degrees = topology.degrees();
    let candidates: Vec<usize> = {
        let hubs: Vec<usize> = (0..n).filter(|&v| v != victim && degrees[v] > 1).collect();
        if hubs.is_empty() {
            (0..n).filter(|&v| v != victim).collect()
        } else {
            hubs
        }
    };
    let closest = candidates
        .into_iter()
        .min_by(|&a, &b| {
            objective.distance(victim, a).total_cmp(&objective.distance(victim, b)).then(a.cmp(&b))
        })
        .expect("n >= 3 guarantees a candidate");
    topology.set_edge(victim, closest, true);
}

/// Applies one mutation — node mutation with probability
/// `settings.node_mutation_prob`, link mutation otherwise. `universe`
/// restricts link *additions* when candidate-link pruning is active
/// (`GaSettings::mutation_neighbors`); the engine precomputes it once.
pub fn mutate<O: Objective>(
    topology: &mut AdjacencyMatrix,
    objective: &O,
    settings: &crate::GaSettings,
    universe: Option<&[usize]>,
    rng: &mut StdRng,
) {
    if rng.gen_range(0.0..1.0) < settings.node_mutation_prob {
        node_mutation(topology, objective, rng);
    } else {
        link_mutation_in(topology, settings.link_mutation_p, universe, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_objective::LineObjective;
    use rand::SeedableRng;

    #[test]
    fn geometric_mean_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: usize = (0..n).map(|_| geometric(0.5, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn link_mutation_changes_on_average_two_links() {
        let mut rng = StdRng::seed_from_u64(2);
        let base =
            AdjacencyMatrix::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]).unwrap();
        let trials = 20_000;
        let mut total_changes = 0usize;
        for _ in 0..trials {
            let mut m = base.clone();
            link_mutation(&mut m, 0.5, &mut rng);
            total_changes += m.hamming_distance(&base).unwrap();
        }
        let mean = total_changes as f64 / trials as f64;
        // Slightly under 2.0 because removals/additions can cap out.
        assert!((1.7..2.1).contains(&mean), "mean changes {mean}");
    }

    #[test]
    fn node_mutation_creates_a_leaf_attached_to_closest_hub() {
        // Line 0-1-2-3-4 (path): interior nodes are non-leaves.
        let obj = LineObjective { n: 5, k0: 0.0, k1: 0.0, k3: 0.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_leafification = false;
        for _ in 0..50 {
            let mut m = AdjacencyMatrix::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
            node_mutation(&mut m, &obj, &mut rng);
            // Victim now has degree exactly 1.
            let degs = m.degrees();
            assert!(degs.iter().filter(|&&d| d == 1).count() >= 2);
            if m.edge_count() < 4 {
                saw_leafification = true;
            }
        }
        assert!(saw_leafification);
    }

    #[test]
    fn node_mutation_reattaches_to_nearest_non_leaf() {
        // Star + chain: 0 is hub (0-1, 0-2, 0-3), 3-4 chain so 3 is a hub.
        // Mutating node 3 must reattach it to the closest remaining hub.
        let obj = LineObjective { n: 5, k0: 0.0, k1: 0.0, k3: 0.0 };
        // Force the victim to be node 0 or 3 (the only non-leaves).
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let mut m = AdjacencyMatrix::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]).unwrap();
            node_mutation(&mut m, &obj, &mut rng);
            let degs = m.degrees();
            // Victim ends with degree 1; total edges shrink or stay equal.
            assert!(m.edge_count() <= 4);
            assert!(degs.contains(&1));
        }
    }

    #[test]
    fn node_mutation_noop_on_single_edge() {
        let obj = LineObjective { n: 2, k0: 0.0, k1: 0.0, k3: 0.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = AdjacencyMatrix::from_edges(2, &[(0, 1)]).unwrap();
        let before = m.clone();
        node_mutation(&mut m, &obj, &mut rng);
        assert_eq!(m, before);
    }

    #[test]
    fn mutate_dispatches_both_kinds() {
        let obj = LineObjective { n: 6, k0: 0.0, k1: 0.0, k3: 0.0 };
        let settings = crate::GaSettings { node_mutation_prob: 0.5, ..crate::GaSettings::quick(0) };
        let mut rng = StdRng::seed_from_u64(6);
        let base =
            AdjacencyMatrix::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut changed = 0;
        for _ in 0..100 {
            let mut m = base.clone();
            mutate(&mut m, &obj, &settings, None, &mut rng);
            if m != base {
                changed += 1;
            }
        }
        assert!(changed > 50, "mutation changed only {changed}/100 topologies");
    }

    #[test]
    fn restricted_universe_only_adds_allowed_pairs() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = AdjacencyMatrix::from_edges(8, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        // Only pairs (0,1), (0,2), (4,5) may ever be added.
        let allowed: Vec<usize> =
            vec![base.pair_index(0, 1), base.pair_index(0, 2), base.pair_index(4, 5)];
        let mut sorted = allowed.clone();
        sorted.sort_unstable();
        for _ in 0..500 {
            let mut m = base.clone();
            link_mutation_in(&mut m, 0.5, Some(&sorted), &mut rng);
            for (u, v) in m.edges() {
                let p = m.pair_index(u, v);
                assert!(base.bit(p) || sorted.contains(&p), "added disallowed pair ({u},{v})");
            }
        }
    }

    #[test]
    fn none_universe_matches_unrestricted_rng_stream() {
        // `link_mutation_in(.., None, ..)` must be byte-for-byte the old
        // operator: same RNG consumption, same offspring.
        let base = AdjacencyMatrix::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        let mut a_rng = StdRng::seed_from_u64(9);
        let mut b_rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let mut a = base.clone();
            let mut b = base.clone();
            link_mutation(&mut a, 0.5, &mut a_rng);
            link_mutation_in(&mut b, 0.5, None, &mut b_rng);
            assert_eq!(a, b);
        }
    }
}
