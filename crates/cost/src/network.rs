//! The fully annotated synthesized network.
//!
//! Requirement 5 of the paper's introduction: "The model should generate a
//! 'network', not just an abstract graph. Simulations often need details
//! such as link capacity, distances, and routing." [`Network`] is that
//! output: topology + per-link length/load/capacity + shortest-path routes
//! + the cost at which it was built.

use crate::capacity::CapacityPlan;
use crate::cost::{evaluate_parts, CostBreakdown};
use crate::params::CostParams;
use cold_context::Context;
use cold_graph::{AdjacencyMatrix, GraphError};

/// One fully specified link of a synthesized network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Smaller endpoint PoP.
    pub u: usize,
    /// Larger endpoint PoP.
    pub v: usize,
    /// Geometric length `ℓ`.
    pub length: f64,
    /// Required bandwidth `w` (routed traffic crossing the link).
    pub load: f64,
    /// Installed capacity `O·w`.
    pub capacity: f64,
}

/// A synthesized PoP-level network: the complete simulation-ready artifact.
#[derive(Debug, Clone)]
pub struct Network {
    /// The PoP-level topology.
    pub topology: AdjacencyMatrix,
    /// Annotated links (sorted by `(u, v)`).
    pub links: Vec<Link>,
    /// Cost components under the parameters the network was built with.
    pub cost: CostBreakdown,
    /// The parameters used.
    pub params: CostParams,
    /// Routing and capacity details (shortest-path trees per source).
    pub plan: CapacityPlan,
}

impl Network {
    /// Annotates `topology` with capacities, routes and costs for `ctx`.
    ///
    /// # Errors
    /// [`GraphError::Disconnected`] / [`GraphError::SizeMismatch`] as in
    /// [`evaluate_parts`].
    pub fn build(
        topology: AdjacencyMatrix,
        ctx: &Context,
        params: CostParams,
    ) -> Result<Self, GraphError> {
        let (cost, plan) = evaluate_parts(&topology, ctx, &params)?;
        let links = plan
            .edges()
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| Link {
                u,
                v,
                length: plan.length[i],
                load: plan.load()[i],
                capacity: plan.capacity[i],
            })
            .collect();
        Ok(Self { topology, links, cost, params, plan })
    }

    /// Number of PoPs.
    pub fn n(&self) -> usize {
        self.topology.n()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Total cost of the network.
    pub fn total_cost(&self) -> f64 {
        self.cost.total()
    }

    /// The route (PoP sequence) used for demand `(s, t)`.
    pub fn route(&self, s: usize, t: usize) -> Option<Vec<usize>> {
        self.plan.routing.route(s, t)
    }

    /// The adjacency-list view of the topology.
    pub fn graph(&self) -> cold_graph::Graph {
        self.topology.to_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cold_context::gravity::GravityModel;
    use cold_context::population::PopulationKind;
    use cold_context::region::Point;

    fn ctx() -> Context {
        Context::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0)],
            PopulationKind::Constant { value: 2.0 },
            GravityModel::raw(),
            0,
        )
    }

    #[test]
    fn build_annotates_every_link() {
        let topo = AdjacencyMatrix::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let net = Network::build(topo, &ctx(), CostParams::paper(1e-3, 10.0)).unwrap();
        assert_eq!(net.n(), 3);
        assert_eq!(net.link_count(), 2);
        for l in &net.links {
            assert!(l.length > 0.0);
            assert!(l.load > 0.0, "all pairs have demand so all links carry traffic");
            assert_eq!(l.capacity, l.load, "O = 1");
        }
        assert!(net.total_cost() > 0.0);
    }

    #[test]
    fn routes_are_exposed() {
        let topo = AdjacencyMatrix::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let net = Network::build(topo, &ctx(), CostParams::default()).unwrap();
        assert_eq!(net.route(1, 2), Some(vec![1, 0, 2]));
        assert_eq!(net.route(1, 1), Some(vec![1]));
    }

    #[test]
    fn overprovision_reflected_in_links() {
        let topo = AdjacencyMatrix::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let params = CostParams::paper(1e-4, 0.0).with_overprovision(2.0);
        let net = Network::build(topo, &ctx(), params).unwrap();
        for l in &net.links {
            assert!((l.capacity - 2.0 * l.load).abs() < 1e-12);
        }
    }

    #[test]
    fn disconnected_build_fails() {
        let topo = AdjacencyMatrix::from_edges(3, &[(0, 1)]).unwrap();
        assert!(Network::build(topo, &ctx(), CostParams::default()).is_err());
    }
}
