//! Erdős–Rényi random graphs.
//!
//! The oldest baseline in Table 1 ("simple and succeed in generating
//! statistically varied graphs … but the parameters are of questionable
//! physical meaning, and without modification these graphs don't even meet
//! simple technical constraints like connectivity"), also used by the GA's
//! initial-population fill (§4.1) and Fig 2's same-link-count comparison.

use cold_graph::AdjacencyMatrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Samples `G(n, p)`: each of the `C(n,2)` pairs is a link independently
/// with probability `p`.
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1`.
pub fn gnp(n: usize, p: f64, rng: &mut StdRng) -> AdjacencyMatrix {
    assert!((0.0..=1.0).contains(&p), "p = {p} must be in [0, 1]");
    let mut m = AdjacencyMatrix::empty(n);
    for pair in 0..m.pair_count() {
        if rng.gen_range(0.0..1.0) < p {
            m.set_bit(pair, true);
        }
    }
    m
}

/// Samples `G(n, m)`: a uniform graph with exactly `m` links (reservoir
/// selection over pair indices). Used for Fig 2(b): "Erdös-Rényi graphs
/// based on that network — they all have the same number of links but in
/// random places."
///
/// # Panics
/// Panics if `m > C(n,2)`.
pub fn gnm(n: usize, m: usize, rng: &mut StdRng) -> AdjacencyMatrix {
    let mut g = AdjacencyMatrix::empty(n);
    let pairs = g.pair_count();
    assert!(m <= pairs, "m = {m} exceeds C({n},2) = {pairs}");
    // Partial Fisher–Yates over pair indices.
    let mut idx: Vec<usize> = (0..pairs).collect();
    for i in 0..m {
        let j = rng.gen_range(i..pairs);
        idx.swap(i, j);
        g.set_bit(idx[i], true);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn gnp_density_close_to_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 200;
        let mut total = 0usize;
        for _ in 0..trials {
            total += gnp(20, 0.3, &mut rng).edge_count();
        }
        let mean = total as f64 / trials as f64;
        let expect = 0.3 * 190.0;
        assert!((mean - expect).abs() < 3.0, "mean edges {mean} vs {expect}");
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(3);
        for m in [0usize, 1, 7, 21] {
            assert_eq!(gnm(7, m, &mut rng).edge_count(), m);
        }
    }

    #[test]
    fn gnm_varies_with_seed() {
        let a = gnm(10, 12, &mut StdRng::seed_from_u64(4));
        let b = gnm(10, 12, &mut StdRng::seed_from_u64(5));
        assert_ne!(a, b);
        let c = gnm(10, 12, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(6);
        gnm(4, 7, &mut rng);
    }
}
