//! Degree-based statistics: average degree, CVND, hubs and leaves.
//!
//! The coefficient of variation of node degree (CVND) is the paper's
//! "hubbiness" measure (§7, Fig 8): the standard deviation of the node
//! degrees divided by their mean. Some operator networks in the Topology
//! Zoo reach CVND ≈ 2, which COLD can only reproduce once the hub cost `k3`
//! is part of the objective — that observation is the point of §7.

use crate::graph::Graph;

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Mean node degree (`2m/n`).
    pub mean: f64,
    /// Population standard deviation of node degree.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`); `0` when mean is `0`.
    pub cvnd: f64,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Number of leaf nodes (degree exactly 1).
    pub leaves: usize,
    /// Number of hub / core nodes (degree strictly greater than 1) — the
    /// set `N_C` whose cardinality Fig 9 plots.
    pub hubs: usize,
}

/// Computes [`DegreeStats`] for a graph.
///
/// Returns all-zero stats for the empty graph (n = 0).
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.n();
    if n == 0 {
        return DegreeStats {
            mean: 0.0,
            std_dev: 0.0,
            cvnd: 0.0,
            min: 0,
            max: 0,
            leaves: 0,
            hubs: 0,
        };
    }
    let degs = g.degrees();
    let mean = degs.iter().sum::<usize>() as f64 / n as f64;
    let var = degs.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    let std_dev = var.sqrt();
    DegreeStats {
        mean,
        std_dev,
        cvnd: if mean > 0.0 { std_dev / mean } else { 0.0 },
        min: degs.iter().copied().min().unwrap_or(0),
        max: degs.iter().copied().max().unwrap_or(0),
        leaves: degs.iter().filter(|&&d| d == 1).count(),
        hubs: degs.iter().filter(|&&d| d > 1).count(),
    }
}

/// Mean node degree, `2m/n` (Fig 5's y-axis).
pub fn average_degree(g: &Graph) -> f64 {
    degree_stats(g).mean
}

/// Coefficient of variation of node degree (Fig 8's y-axis).
pub fn cvnd(g: &Graph) -> f64 {
    degree_stats(g).cvnd
}

/// Number of leaf PoPs (degree 1).
pub fn leaf_count(g: &Graph) -> usize {
    degree_stats(g).leaves
}

/// Number of hub / core PoPs (degree > 1) — `|N_C|` of §3.2.2, Fig 9.
pub fn hub_count(g: &Graph) -> usize {
    degree_stats(g).hubs
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let degs = g.degrees();
    let max = degs.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degs {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_graph_stats() {
        // Star on 5 nodes: hub degree 4, four leaves.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = degree_stats(&g);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.hubs, 1);
        // degrees [4,1,1,1,1]: var = (5.76 + 4*0.36)/5 = 1.44, std = 1.2
        assert!((s.std_dev - 1.2).abs() < 1e-12);
        assert!((s.cvnd - 0.75).abs() < 1e-12);
    }

    #[test]
    fn regular_graph_has_zero_cvnd() {
        // 4-cycle: every degree 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.cvnd, 0.0);
        assert_eq!(s.hubs, 4);
        assert_eq!(s.leaves, 0);
    }

    #[test]
    fn tree_average_degree_formula() {
        // Paper §6: "for a tree the average degree is 2 − 2/n".
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        assert!((average_degree(&g) - (2.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_all_zero() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(
            s,
            DegreeStats { mean: 0.0, std_dev: 0.0, cvnd: 0.0, min: 0, max: 0, leaves: 0, hubs: 0 }
        );
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[1], 3); // nodes 1, 2, 4
        assert_eq!(h[2], 1); // node 3
        assert_eq!(h[3], 1); // node 0
    }

    #[test]
    fn isolated_nodes_count_as_degree_zero() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.leaves, 2);
        assert_eq!(s.hubs, 0);
    }
}
