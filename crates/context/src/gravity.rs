//! The gravity traffic-matrix model (§3.1).
//!
//! "Our traffic matrix is created using a gravity model … The gravity model
//! is created by choosing a random population for each PoP" (§3.1). With
//! populations `p_i`, the demand between distinct PoPs is
//! `t(i, j) = s · p_i · p_j` — the maximum-entropy traffic model given row
//! and column totals \[22\], and a good match to the distribution of real
//! traffic matrices \[21\].
//!
//! The paper leaves the gravity constant `s` implicit. The calibrated
//! default here ([`Normalization::PerCapita`], `s = 1/p̄`) is the
//! choice under which the paper's published axes — `k0 = 10, k1 = 1`,
//! `k2 ∈ 10⁻⁴…1.6·10⁻³`, `k3 ∈ 10⁰…10³` — reproduce the tree → mesh and
//! tree → hub-and-spoke transitions where the figures show them (see
//! DESIGN.md §5). [`Normalization::TotalTraffic`] instead rescales to a
//! fixed total for experiments that grow traffic independently of PoP
//! count (the "network growth" scaling of §1 req. 3).
//!
//! An optional distance-friction exponent generalizes to the classic
//! trade-gravity form `t ∝ p_i·p_j / d_ij^friction`; the paper uses no
//! friction (`friction = 0`), and that is the default.

use crate::region::Point;
use crate::traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// How to scale the raw `p_i·p_j` products.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Normalization {
    /// Use raw products.
    #[default]
    None,
    /// Rescale so the total offered traffic equals the given value.
    TotalTraffic(
        /// Desired sum over all ordered pairs (> 0).
        f64,
    ),
    /// Per-capita gravity constant: `t(i,j) = demand · p_i·p_j / p̄` where
    /// `p̄` is the mean population. With `demand =`
    /// [`PAPER_PER_CAPITA_DEMAND`] this is the calibration under which the
    /// paper's `k2` axis (10⁻⁴…1.6·10⁻³ with `k0 = 10, k1 = 1`) spans the
    /// tree→mesh transition its figures show (see DESIGN.md §5).
    PerCapita {
        /// Offered traffic per unit of (normalized) population product.
        demand: f64,
    },
}

/// The calibrated per-capita demand for the paper's parameter axes
/// (derivation in DESIGN.md §5).
pub const PAPER_PER_CAPITA_DEMAND: f64 = 8.0;

/// Gravity traffic-matrix generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GravityModel {
    /// Output scaling policy.
    pub normalization: Normalization,
    /// Distance-friction exponent `γ ≥ 0` in `t ∝ p_i·p_j / d_ij^γ`.
    /// `0` (default) disables friction, matching the paper.
    pub friction: f64,
}

impl GravityModel {
    /// The paper's model: gravity products with the calibrated per-capita
    /// constant, no distance friction.
    pub fn paper_default() -> Self {
        Self {
            normalization: Normalization::PerCapita { demand: PAPER_PER_CAPITA_DEMAND },
            friction: 0.0,
        }
    }

    /// Raw-product gravity (no normalization, no friction) — useful when
    /// the caller controls traffic magnitudes explicitly.
    pub fn raw() -> Self {
        Self::default()
    }

    /// Builds the traffic matrix for the given populations (and, when
    /// friction is enabled, PoP positions).
    ///
    /// # Panics
    /// Panics if populations are not strictly positive, if `friction > 0`
    /// but `positions` is `None` or mismatched, or if two PoPs coincide
    /// while friction is enabled.
    pub fn traffic_matrix(
        &self,
        populations: &[f64],
        positions: Option<&[Point]>,
    ) -> TrafficMatrix {
        let n = populations.len();
        assert!(
            populations.iter().all(|&p| p > 0.0 && p.is_finite()),
            "populations must be positive and finite"
        );
        assert!(self.friction >= 0.0, "friction must be nonnegative");
        let mut tm = TrafficMatrix::zeros(n);
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let mut demand = populations[s] * populations[t];
                if self.friction > 0.0 {
                    let pos = positions.expect("positions required when friction > 0");
                    assert_eq!(pos.len(), n, "positions must cover every PoP");
                    let d = pos[s].distance(&pos[t]);
                    assert!(d > 0.0, "coincident PoPs {s},{t} with friction enabled");
                    demand /= d.powf(self.friction);
                }
                tm.set_demand(s, t, demand);
            }
        }
        match self.normalization {
            Normalization::None => {}
            Normalization::TotalTraffic(total) => {
                assert!(total > 0.0, "total traffic must be positive");
                let raw = tm.total();
                if raw > 0.0 {
                    tm.scale(total / raw);
                }
            }
            Normalization::PerCapita { demand } => {
                assert!(demand > 0.0, "per-capita demand must be positive");
                let mean = populations.iter().sum::<f64>() / n.max(1) as f64;
                if mean > 0.0 {
                    tm.scale(demand / mean);
                }
            }
        }
        tm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_and_symmetry() {
        let tm = GravityModel::raw().traffic_matrix(&[2.0, 3.0, 5.0], None);
        assert_eq!(tm.demand(0, 1), 6.0);
        assert_eq!(tm.demand(1, 2), 15.0);
        assert_eq!(tm.demand(0, 2), 10.0);
        assert!(tm.is_symmetric(1e-12));
        assert_eq!(tm.demand(1, 1), 0.0);
    }

    #[test]
    fn normalization_hits_total() {
        let g = GravityModel { normalization: Normalization::TotalTraffic(100.0), friction: 0.0 };
        let tm = g.traffic_matrix(&[1.0, 2.0, 3.0, 4.0], None);
        assert!((tm.total() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn friction_reduces_long_haul_demand() {
        let pos = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0), Point::new(1.0, 0.0)];
        let g = GravityModel { normalization: Normalization::None, friction: 2.0 };
        let tm = g.traffic_matrix(&[1.0, 1.0, 1.0], Some(&pos));
        // Same populations: near pair demand must exceed far pair demand.
        assert!(tm.demand(0, 1) > tm.demand(0, 2) * 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_population_rejected() {
        GravityModel::raw().traffic_matrix(&[1.0, 0.0], None);
    }

    #[test]
    fn bigger_population_attracts_more_traffic() {
        let tm = GravityModel::raw().traffic_matrix(&[1.0, 10.0, 1.0], None);
        assert!(tm.row_sum(1) > tm.row_sum(0));
    }
}
