//! A bounded FIFO work queue with blocking pop and explicit close.
//!
//! `push` applies backpressure by *refusing* when full — the HTTP layer
//! turns that into a `503` with `Retry-After` instead of buffering
//! unboundedly. `pop` blocks workers on a condvar until an item arrives
//! or the queue is closed for shutdown; `push_forced` bypasses the bound
//! for restart-time requeues of already-accepted jobs, which must never
//! be dropped just because the configured bound shrank.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Returned by [`BoundedQueue::push`] when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` (>= 1) queued items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be >= 1");
        Self {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues `item`, or refuses with [`QueueFull`] at capacity.
    /// Pushing to a closed queue also refuses (shutdown is a full stop).
    ///
    /// # Errors
    /// [`QueueFull`] — the caller answers 503 with `Retry-After`.
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues `item` ignoring the bound (restart-time requeue of jobs
    /// the service already accepted in a previous life).
    pub fn push_forced(&self, item: T) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        self.ready.notify_one();
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed and drained (returning `None` — the worker exits).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes refuse,
    /// and blocked `pop`s wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (for `/healthz`).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_refuses_at_capacity_and_preserves_fifo_order() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(QueueFull));
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains_pending_items() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push("pending").unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            })
        };
        // Give the consumer a moment to drain and block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec!["pending"]);
        assert_eq!(q.push("late"), Err(QueueFull));
    }

    #[test]
    fn closing_an_idle_queue_wakes_parked_workers_without_a_stray_push() {
        // Drain-on-idle regression: workers blocked in `pop` on an *empty*
        // queue must be released by `close()` alone. If close ever stops
        // notifying the condvar, this test hangs on join until the harness
        // timeout instead of finishing in milliseconds.
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Let every worker reach the condvar wait before closing.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let start = std::time::Instant::now();
        q.close();
        for w in workers {
            assert_eq!(w.join().unwrap(), None, "idle workers exit with None");
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "idle drain took {:?}; workers were not woken by close",
            start.elapsed()
        );
    }

    #[test]
    fn forced_push_ignores_the_bound_but_not_the_close() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        q.push_forced(2);
        assert_eq!(q.len(), 2);
        q.close();
        q.push_forced(3);
        assert_eq!(q.len(), 2, "closed queue refuses even forced pushes");
    }
}
