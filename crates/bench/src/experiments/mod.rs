//! One module per paper artifact. Each exposes
//! `run(&ExpOptions) -> serde_json::Value`: it prints the series the paper
//! plots and returns the JSON document the binary writes to `results/`.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig8a;
pub mod ga_vs_sa;
pub mod hubcost;
pub mod sec5;
pub mod sec7;
pub mod table1;
pub mod tunability;
